(** Virtual-time profiler with per-layer attribution.

    The profiler keeps, for every fiber, a stack of layer frames ("vfs",
    "bcache", "log", ...). Virtual time only moves in the engine's scheduler
    loop, and every advance is owned by the fiber whose wakeup event causes
    it (see {!Engine.set_advance_hook}); the profiler charges each advance
    to that fiber's current frame stack, or to "idle" when the fiber has no
    frames (or the advance is unowned). Because every nanosecond of a run is
    charged to exactly one folded stack, the per-layer self times sum to the
    elapsed virtual time with no residue — the conservation property the
    tests assert.

    Output comes in two shapes: folded stacks ("vfs;bcache;device-io 1234",
    one line per stack, directly consumable by flamegraph.pl / speedscope)
    and a per-layer self/total summary for attribution tables. *)

type frames = {
  mutable stack : string list;  (** innermost first *)
  mutable key : string;  (** folded form, outermost first; "" when empty *)
}

type t = {
  engine : Engine.t;
  mutable enabled : bool;
  per_fiber : (int, frames) Hashtbl.t;
  self : (string, int64 ref) Hashtbl.t;  (** folded key -> self ns *)
  waits : (string, int64 ref) Hashtbl.t;
      (** "layer/lock" -> ns a fiber in [layer] spent blocked on [lock].
          Kept apart from [self]: blocked time overlaps other fibers'
          running time, so folding it into self would break conservation. *)
  mutable started_at : int64;
}

let idle = "idle"

let create engine =
  {
    engine;
    enabled = false;
    per_fiber = Hashtbl.create 64;
    self = Hashtbl.create 64;
    waits = Hashtbl.create 64;
    started_at = 0L;
  }

let enabled t = t.enabled

let charge t delta fid =
  let key =
    if fid < 0 then idle
    else
      match Hashtbl.find_opt t.per_fiber fid with
      | Some f when f.key <> "" -> f.key
      | _ -> idle
  in
  match Hashtbl.find_opt t.self key with
  | Some r -> r := Int64.add !r delta
  | None -> Hashtbl.add t.self key (ref delta)

(* Charge a lock wait to "<layer>/<lock>", where <layer> is the waiting
   fiber's innermost frame at resume time ("idle" when it has none). The
   hook runs inside the resumed fiber, so [current_fid] is the waiter. *)
let charge_wait t lock ns =
  let fid = Engine.current_fid t.engine in
  let layer =
    if fid < 0 then idle
    else
      match Hashtbl.find_opt t.per_fiber fid with
      | Some { stack = top :: _; _ } -> top
      | _ -> idle
  in
  let key = layer ^ "/" ^ lock in
  match Hashtbl.find_opt t.waits key with
  | Some r -> r := Int64.add !r ns
  | None -> Hashtbl.add t.waits key (ref ns)

let enable t =
  if not t.enabled then begin
    t.enabled <- true;
    t.started_at <- Engine.now t.engine;
    Engine.set_advance_hook t.engine (Some (charge t));
    Engine.set_lock_wait_hook t.engine (Some (charge_wait t))
  end

let disable t =
  if t.enabled then begin
    t.enabled <- false;
    Engine.set_advance_hook t.engine None;
    Engine.set_lock_wait_hook t.engine None
  end

let reset t =
  Hashtbl.reset t.per_fiber;
  Hashtbl.reset t.self;
  Hashtbl.reset t.waits;
  t.started_at <- Engine.now t.engine

(** Run [f] under layer frame [layer] for the current fiber. Re-entering
    the layer already on top of the stack is a no-op, so recursive or
    layered calls within one subsystem do not produce "vfs;vfs" stacks. *)
let with_frame t layer f =
  if not t.enabled then f ()
  else begin
    let fid = Engine.current_fid t.engine in
    let fr =
      match Hashtbl.find_opt t.per_fiber fid with
      | Some fr -> fr
      | None ->
          let fr = { stack = []; key = "" } in
          Hashtbl.add t.per_fiber fid fr;
          fr
    in
    match fr.stack with
    | top :: _ when String.equal top layer -> f ()
    | prev_stack ->
        let prev_key = fr.key in
        fr.stack <- layer :: prev_stack;
        fr.key <- (if prev_key = "" then layer else prev_key ^ ";" ^ layer);
        Fun.protect
          ~finally:(fun () ->
            fr.stack <- prev_stack;
            fr.key <- prev_key)
          f
  end

(* ------------------------------------------------------------------ *)
(* Reporting.                                                          *)

let elapsed t = Int64.sub (Engine.now t.engine) t.started_at

let attributed t =
  Hashtbl.fold (fun _ r acc -> Int64.add acc !r) t.self 0L

(** Folded stacks sorted by key: [("vfs;bcache;device-io", ns); ...]. *)
let folded t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.self []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(** Lock-wait attribution sorted by descending wait time:
    [("bcache/bcache-shard", ns); ("log/log", ns); ...] — each entry is
    the blocked time fibers whose innermost frame was <layer> accumulated
    on lock <name>. Waits overlap runtime of other fibers, so these do NOT
    sum into {!attributed}. *)
let lock_waits t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.waits []
  |> List.sort (fun (ka, a) (kb, b) ->
         let c = Int64.compare b a in
         if c <> 0 then c else String.compare ka kb)

let leaf_of key =
  match String.rindex_opt key ';' with
  | Some i -> String.sub key (i + 1) (String.length key - i - 1)
  | None -> key

let layers_of key = String.split_on_char ';' key

type layer_time = { layer : string; self_ns : int64; total_ns : int64 }

(** Per-layer summary: [self_ns] is time where the layer is the innermost
    frame, [total_ns] counts any stack the layer appears in. Layers are
    sorted by descending self time; "idle" sorts last. *)
let summary t =
  let tbl : (string, int64 ref * int64 ref) Hashtbl.t = Hashtbl.create 16 in
  let cell layer =
    match Hashtbl.find_opt tbl layer with
    | Some c -> c
    | None ->
        let c = (ref 0L, ref 0L) in
        Hashtbl.add tbl layer c;
        c
  in
  List.iter
    (fun (key, ns) ->
      let s, _ = cell (leaf_of key) in
      s := Int64.add !s ns;
      List.iter
        (fun layer ->
          let _, tot = cell layer in
          tot := Int64.add !tot ns)
        (List.sort_uniq String.compare (layers_of key)))
    (folded t);
  Hashtbl.fold
    (fun layer (s, tot) acc ->
      { layer; self_ns = !s; total_ns = !tot } :: acc)
    tbl []
  |> List.sort (fun a b ->
         match (String.equal a.layer idle, String.equal b.layer idle) with
         | true, false -> 1
         | false, true -> -1
         | _ ->
             let c = Int64.compare b.self_ns a.self_ns in
             if c <> 0 then c else String.compare a.layer b.layer)

(** Folded output in the flamegraph collapsed-stack format, one
    "stack space count" line per distinct stack (counts are nanoseconds). *)
let folded_output t =
  let buf = Buffer.create 256 in
  List.iter
    (fun (key, ns) -> Buffer.add_string buf (Printf.sprintf "%s %Ld\n" key ns))
    (folded t);
  Buffer.contents buf
