(** Virtual-time synchronisation primitives for simulated threads.

    These mirror the kernel primitives the simulated file systems use:
    sleeping mutexes (xv6 sleeplocks / kernel semaphores), condition
    variables, counting semaphores, reader-writer locks, one-shot ivars and
    FIFO channels. All wait queues are FIFO with direct handoff, keeping
    simulations deterministic and starvation-free. *)

module Mutex : sig
  type t

  val create : ?name:string -> unit -> t
  (** [name] appears in deadlock diagnostics and error messages. *)

  val lock : t -> unit
  (** Block until the mutex is held. FIFO handoff: no barging. *)

  val try_lock : t -> bool
  val unlock : t -> unit

  val locked : t -> bool

  val contended : t -> int
  (** How many [lock] calls had to wait (a contention statistic). *)

  val acquisitions : t -> int

  val wait_ns : t -> int64
  (** Total virtual time [lock] calls spent blocked on this mutex. *)

  val max_wait_ns : t -> int64
  (** Longest single blocked wait — with FIFO handoff this is bounded by
      (number of waiters ahead) × (their hold times), never unbounded. *)

  val with_lock : t -> (unit -> 'a) -> 'a
  (** Lock, run, unlock — also on exceptions. *)
end

module Condvar : sig
  type t

  val create : unit -> t

  val wait : t -> Mutex.t -> unit
  (** Atomically release the mutex, wait for a signal, re-acquire. *)

  val signal : t -> unit
  val broadcast : t -> unit
  val waiting : t -> int
end

module Semaphore : sig
  type t

  val create : int -> t
  val acquire : t -> unit
  val try_acquire : t -> bool
  val release : t -> unit
  val available : t -> int
end

module Rwlock : sig
  type t

  val create : ?name:string -> unit -> t
  (** [name] appears in deadlock diagnostics and lock-wait profiles. *)

  val read_lock : t -> unit
  (** Shared access; parallel with other readers. FIFO with writers, so
      writers are not starved. *)

  val read_unlock : t -> unit
  val write_lock : t -> unit
  val write_unlock : t -> unit
  val with_read : t -> (unit -> 'a) -> 'a
  val with_write : t -> (unit -> 'a) -> 'a
end

(** One-shot value: write once, any number of waiters. Used to match FUSE
    replies to waiting requesters. *)
module Ivar : sig
  type 'a t

  val create : unit -> 'a t

  val fill : 'a t -> 'a -> unit
  (** Raises [Invalid_argument] if already filled. *)

  val is_full : 'a t -> bool

  val read : 'a t -> 'a
  (** Block until filled. *)
end

(** Bounded FIFO channel between fibers (the /dev/fuse request queue, the
    daemon loop). *)
module Channel : sig
  type 'a t

  exception Closed

  val create : ?capacity:int -> unit -> 'a t
  val send : 'a t -> 'a -> unit
  val recv : 'a t -> 'a

  val recv_opt : 'a t -> 'a option
  (** [None] once the channel is closed and drained. *)

  val close : 'a t -> unit
  (** Wakes all blocked senders and receivers with {!Closed}. *)

  val length : 'a t -> int
end
