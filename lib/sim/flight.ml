(** Always-on flight recorder: fixed-size per-CPU rings of compact recent
    events, plus triggered dumps.

    The recorder is the "what just happened" channel that stays on in
    every run, including benchmarks: recording an entry is a few stores
    into a preallocated ring — no sleeps, no CPU accounting — so it is
    invisible to virtual time by construction. Entries are compact
    (timestamp, fiber, request context, severity, kind, message) and land
    in the ring of the CPU the fiber hashes to, oldest overwritten first.

    When something goes wrong — an op over its latency threshold, an error
    return, an accounting oracle firing — the caller [trigger]s a dump:
    the merged ring contents plus the offending request's full causal
    trace (every tracer event stamped with that reqid) are rendered to
    text, kept as [last_dump], written to [dump_dir] when one is set, and
    handed to the [on_dump] hook. Dumps are capped per recorder so a
    pathological run cannot flood the disk. *)

type severity = Debug | Info | Warn | Error

let severity_label = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

type entry = {
  e_ts : int64;  (** virtual nanoseconds *)
  e_fid : int;
  e_req : int64;  (** request context at record time, 0 = none *)
  e_sev : severity;
  e_kind : string;  (** event class: "syscall", "printk", "trigger", ... *)
  e_msg : string;
}

type t = {
  engine : Engine.t;
  trace : Trace.t;
      (** the machine tracer, consulted at dump time for the offending
          request's causal events *)
  rings : entry option array array;  (** one ring per CPU *)
  heads : int array;
  lens : int array;
  mutable enabled : bool;
  mutable recorded : int;  (** entries ever recorded *)
  mutable dumps : int;
  mutable max_dumps : int;
  mutable dump_dir : string option;
  mutable last_dump : (string * string) option;  (** reason, content *)
  mutable on_dump : (string -> string -> unit) option;
}

let default_ring = 512

(** An enabled recorder with [cpus] rings of [ring_size] entries each. *)
let create ?(ring_size = default_ring) ?(cpus = 4) engine trace =
  if ring_size < 1 || cpus < 1 then invalid_arg "Flight.create";
  {
    engine;
    trace;
    rings = Array.init cpus (fun _ -> Array.make ring_size None);
    heads = Array.make cpus 0;
    lens = Array.make cpus 0;
    enabled = true;
    recorded = 0;
    dumps = 0;
    max_dumps = 16;
    dump_dir = None;
    last_dump = None;
    on_dump = None;
  }

let enabled t = t.enabled
let set_enabled t b = t.enabled <- b
let recorded t = t.recorded
let dump_count t = t.dumps
let set_max_dumps t n = t.max_dumps <- n
let set_dump_dir t d = t.dump_dir <- d
let set_on_dump t hook = t.on_dump <- hook
let last_dump t = t.last_dump

(** Record one entry (a few stores; free in virtual time). *)
let note ?(sev = Info) t ~kind msg =
  if t.enabled then begin
    let fid = Engine.current_fid t.engine in
    let cpu = (fid land max_int) mod Array.length t.rings in
    let ring = t.rings.(cpu) in
    let cap = Array.length ring in
    ring.(t.heads.(cpu)) <-
      Some
        {
          e_ts = Engine.now t.engine;
          e_fid = fid;
          e_req = Engine.current_req t.engine;
          e_sev = sev;
          e_kind = kind;
          e_msg = msg;
        };
    t.heads.(cpu) <- (t.heads.(cpu) + 1) mod cap;
    if t.lens.(cpu) < cap then t.lens.(cpu) <- t.lens.(cpu) + 1;
    t.recorded <- t.recorded + 1
  end

(** Ring contents merged across CPUs, oldest first (stable on ties). *)
let entries t =
  let all = ref [] in
  Array.iteri
    (fun cpu ring ->
      let cap = Array.length ring in
      let len = t.lens.(cpu) in
      let first = (t.heads.(cpu) - len + (cap * 2)) mod cap in
      for i = 0 to len - 1 do
        match ring.((first + i) mod cap) with
        | Some e -> all := e :: !all
        | None -> ()
      done)
    t.rings;
  List.stable_sort (fun a b -> Int64.compare a.e_ts b.e_ts) (List.rev !all)

let clear t =
  Array.iter (fun ring -> Array.fill ring 0 (Array.length ring) None) t.rings;
  Array.fill t.heads 0 (Array.length t.heads) 0;
  Array.fill t.lens 0 (Array.length t.lens) 0

(* ------------------------------------------------------------------ *)
(* Dump rendering.                                                     *)

let render_entry buf e =
  Buffer.add_string buf
    (Printf.sprintf "%12Ld ns  fid=%-5d req=%-6Ld %-5s %-10s %s\n" e.e_ts
       e.e_fid e.e_req (severity_label e.e_sev) e.e_kind e.e_msg)

let phase_label = function
  | Trace.Begin -> "B"
  | Trace.End -> "E"
  | Trace.Instant -> "i"
  | Trace.Counter -> "C"
  | Trace.Flow_start -> "s"
  | Trace.Flow_finish -> "f"

(** Render the ring (and, for a nonzero [req], that request's causal trace
    from the machine tracer) to text. *)
let render t ~reason ~req =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "flight-recorder dump: %s\nvirtual time: %Ld ns\nreqid: %Ld\n"
       reason (Engine.now t.engine) req);
  Buffer.add_string buf
    (Printf.sprintf "-- ring (%d entries, %d recorded total) --\n"
       (List.length (entries t))
       t.recorded);
  List.iter (render_entry buf) (entries t);
  if req <> 0L then begin
    let evs =
      List.filter (fun (e : Trace.event) -> e.req = req) (Trace.events t.trace)
    in
    Buffer.add_string buf
      (Printf.sprintf "-- causal trace for req %Ld (%d events) --\n" req
         (List.length evs));
    List.iter
      (fun (e : Trace.event) ->
        Buffer.add_string buf
          (Printf.sprintf "%12Ld ns  fid=%-5d %s %s%s%s\n" e.ts e.tid
             (phase_label e.ph)
             (if e.cat = "" then "" else e.cat ^ ":")
             e.name
             (match e.ph with
             | Trace.Flow_start | Trace.Flow_finish ->
                 Printf.sprintf " edge=%Ld" e.value
             | Trace.Counter -> Printf.sprintf " value=%Ld" e.value
             | _ -> "")))
      evs
  end;
  Buffer.contents buf

(** Triggered dump: render the ring plus the causal trace of [req] (when
    nonzero, typically the current request context), record it as
    [last_dump], write [dump_dir]/flight-<n>.txt when a directory is set,
    and invoke the [on_dump] hook. Rate-limited by [set_max_dumps];
    returns whether a dump was actually produced. *)
let trigger ?req t reason =
  if (not t.enabled) || t.dumps >= t.max_dumps then false
  else begin
    let req =
      match req with Some r -> r | None -> Engine.current_req t.engine
    in
    note ~sev:Error t ~kind:"trigger" reason;
    let content = render t ~reason ~req in
    t.dumps <- t.dumps + 1;
    t.last_dump <- Some (reason, content);
    (match t.dump_dir with
    | Some dir ->
        let path = Filename.concat dir (Printf.sprintf "flight-%d.txt" t.dumps) in
        let oc = open_out path in
        output_string oc content;
        close_out oc
    | None -> ());
    (match t.on_dump with Some hook -> hook reason content | None -> ());
    true
  end
