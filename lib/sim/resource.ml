(** A k-server resource with FIFO admission: models CPU cores and device
    channels. A fiber [use]s the resource for a duration of virtual time;
    at most [capacity] fibers are inside at once, the rest queue. *)

type t = {
  name : string;
  capacity : int;
  mutable in_use : int;
  waiters : (unit -> unit) Queue.t;
  mutable busy_ns : int64; (* total occupied server-time, for utilisation *)
  mutable admissions : int;
}

let create ?(name = "resource") capacity =
  if capacity < 1 then invalid_arg "Resource.create";
  {
    name;
    capacity;
    in_use = 0;
    waiters = Queue.create ();
    busy_ns = 0L;
    admissions = 0;
  }

let acquire t =
  if t.in_use < t.capacity && Queue.is_empty t.waiters then
    t.in_use <- t.in_use + 1
  else begin
    Engine.note_blocked ("resource " ^ t.name);
    Engine.suspend (fun w -> Queue.push w t.waiters);
    Engine.clear_blocked ()
  end;
  t.admissions <- t.admissions + 1

let release t =
  if t.in_use <= 0 then invalid_arg ("Resource.release: " ^ t.name);
  match Queue.take_opt t.waiters with
  | Some w -> w () (* handoff: in_use unchanged *)
  | None -> t.in_use <- t.in_use - 1

(** Hold an already-[acquire]d server for [dur] of virtual time, counting
    it as busy. Lets callers split the queueing wait from the service time
    (e.g. to attribute them to different profiler frames). *)
let busy_sleep t dur =
  Engine.sleep dur;
  t.busy_ns <- Int64.add t.busy_ns dur

(** Occupy one server for [dur] of virtual time. *)
let use t dur =
  acquire t;
  busy_sleep t dur;
  release t

let in_use t = t.in_use
let capacity t = t.capacity
let queued t = Queue.length t.waiters
let busy_ns t = t.busy_ns
let admissions t = t.admissions

let utilisation t ~elapsed =
  if Int64.compare elapsed 0L <= 0 then 0.
  else
    Int64.to_float t.busy_ns
    /. (Int64.to_float elapsed *. float_of_int t.capacity)
