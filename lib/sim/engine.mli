(** Deterministic discrete-event engine with cooperative simulated threads
    ("fibers").

    Fibers are plain OCaml functions executed under an effect handler; they
    block by performing effects ([sleep], [suspend]) and the engine resumes
    them from a virtual-time event queue. Event order is total — (time,
    insertion sequence) — so simulations are deterministic and replayable. *)

type t
(** An engine instance: virtual clock + event queue + fiber bookkeeping. *)

exception Deadlock of string
(** Raised by {!run} when fibers remain blocked but no event is pending.
    The message lists each blocked fiber and what it is waiting on. *)

exception Fiber_failure of string * exn
(** A fiber raised: carries the fiber name and the original exception. *)

type fiber
(** Handle to a spawned fiber. *)

val create : unit -> t

val now : t -> int64
(** Current virtual time in nanoseconds. *)

val set_trace : t -> bool -> unit
(** Enable coarse event-count tracing to stderr (debugging aid). *)

val current_fid : t -> int
(** Id of the currently running fiber, or -1 outside fiber context. Used by
    {!Trace} to attribute events to simulated threads. *)

val set_advance_hook : t -> (int64 -> int -> unit) option -> unit
(** Install (or clear) a hook called as [hook delta fid] just before the
    virtual clock advances by [delta] > 0 nanoseconds. [fid] is the fiber
    whose wakeup event causes the advance, or -1 when the advance is caused
    by an unowned callback or by {!run_until} padding the clock out to its
    deadline. Since virtual time only moves here, a hook that charges every
    delta somewhere accounts for the whole run exactly — the basis of
    {!Profile}. *)

val set_lock_wait_hook : t -> (string -> int64 -> unit) option -> unit
(** Install (or clear) a hook called as [hook lock_name wait_ns] from a
    fiber that just resumed after blocking for [wait_ns] > 0 virtual
    nanoseconds on a named synchronisation primitive. Blocked time is
    invisible to the advance hook (advances are charged to the fiber that
    causes them, never to waiters), so contention profiling needs this
    separate channel — see {!Profile}. *)

val set_fiber_exit_hook : t -> (int -> unit) option -> unit
(** Install (or clear) a hook called with the fid of each fiber whose body
    returns normally, while that fiber is still current. Fibers that exit
    by raising are skipped — the exception already reports the failure.
    Used by {!Trace}'s debug mode to detect unbalanced spans. *)

(** {1 Request context}

    A request id is an engine-unique [int64] (0 = none) carried by each
    fiber and inherited by fibers it spawns — so the identity of "the
    request being served" follows the work across async hops (handler
    fiber to device completion fiber) with no call-site plumbing. {!Trace}
    stamps it on every event, which is what lets a causal trace be
    reassembled per request. *)

val current_req : t -> int64
(** Request context of the currently running fiber (0 outside a fiber or
    when none was set). *)

val set_current_req : t -> int64 -> unit
(** Set (or, with 0, clear) the current fiber's request context. No-op
    outside fiber context. *)

val next_req_id : t -> int64
(** Mint a fresh engine-unique request id (never 0). *)

val schedule_at : t -> int64 -> (unit -> unit) -> unit
(** Run a callback at an absolute virtual time (>= [now t]). *)

val schedule_after : t -> int64 -> (unit -> unit) -> unit

val spawn : ?name:string -> t -> (unit -> unit) -> fiber
(** Start a new fiber at the current virtual time. The [name] appears in
    failure and deadlock reports. *)

val run : t -> unit
(** Drain the event queue. Raises {!Fiber_failure} if any fiber raised and
    {!Deadlock} if blocked fibers remain with an empty queue. *)

val run_until : t -> int64 -> unit
(** Process events up to and including [deadline]; later events stay
    queued. Blocked fibers are not treated as a deadlock. *)

(** {1 Operations available inside a fiber} *)

val sleep : int64 -> unit
(** Suspend the calling fiber for a duration of virtual time. *)

val yield : unit -> unit
(** Reschedule the calling fiber behind events at the current instant. *)

val suspend : ((unit -> unit) -> unit) -> unit
(** [suspend register] blocks the calling fiber; [register] receives a
    waker that, when invoked (exactly once), resumes the fiber at the
    waking moment. The building block of all synchronisation primitives. *)

val self_engine : unit -> t
(** The engine running the calling fiber. *)

val now_here : unit -> int64
(** [now] of the calling fiber's engine. *)

(** {1 Blocked-fiber diagnostics} *)

val note_blocked : string -> unit
(** Record what the calling fiber is about to wait on (shown by
    {!Deadlock}). Called by the [Sync] primitives around suspension. *)

val clear_blocked : unit -> unit

val note_lock_wait : string -> int64 -> unit
(** Report a measured lock wait to the calling fiber's engine hook (no-op
    when no hook is installed or the wait was zero). Called by the [Sync]
    primitives. *)
