(** Deterministic discrete-event engine with cooperative simulated threads.

    Threads ("fibers") are ordinary OCaml functions run under an effect
    handler. They block by performing the [Sleep] / [Suspend] effects; the
    engine resumes them from its virtual-time event queue. Because the event
    queue is totally ordered by (time, insertion sequence), a simulation with
    a fixed seed is fully deterministic and replayable — the property all of
    the benchmark results rely on. *)

exception Deadlock of string
exception Fiber_failure of string * exn

type fiber = {
  fid : int;
  name : string;
  mutable dead : bool;
  mutable req : int64;
      (** request context: the causal request id the fiber is working on
          behalf of, inherited by fibers it spawns; 0 = none *)
}

type t = {
  mutable now : int64;
  events : (int * (unit -> unit)) Heap.t;
      (** each event carries the fid of the fiber it will resume (-1 for
          unowned callbacks), so a profiler can attribute the virtual time
          that elapses up to the event *)
  mutable seq : int;
  mutable next_fid : int;
  mutable live_fibers : int;
  mutable running : fiber option;
  mutable failure : (string * exn * Printexc.raw_backtrace) option;
  mutable trace : bool;
  mutable on_advance : (int64 -> int -> unit) option;
      (** called with (delta, owner fid) just before [now] advances *)
  mutable on_lock_wait : (string -> int64 -> unit) option;
      (** called as [hook lock_name wait_ns] when a fiber resumes after
          blocking on a named synchronisation primitive *)
  mutable next_req : int64;
      (** request-id mint; ids are engine-unique and never reused *)
  mutable on_fiber_exit : (int -> unit) option;
      (** called with the fid of a fiber whose body returned normally,
          while the fiber is still current — used by [Trace] to detect
          spans begun but never ended *)
}

type _ Effect.t +=
  | Sleep : int64 -> unit Effect.t
  | Suspend : ((unit -> unit) -> unit) -> unit Effect.t
  | Get_engine : t Effect.t

let create () =
  {
    now = 0L;
    events = Heap.create ();
    seq = 0;
    next_fid = 0;
    live_fibers = 0;
    running = None;
    failure = None;
    trace = false;
    on_advance = None;
    on_lock_wait = None;
    next_req = 0L;
    on_fiber_exit = None;
  }

let now t = t.now
let set_trace t b = t.trace <- b
let set_advance_hook t hook = t.on_advance <- hook
let set_lock_wait_hook t hook = t.on_lock_wait <- hook
let set_fiber_exit_hook t hook = t.on_fiber_exit <- hook

(** Request context of the currently running fiber (0 = none). New fibers
    inherit the spawner's context, so a request's identity follows the
    work across async hops — server handler to device completion fiber —
    without any call-site plumbing. *)
let current_req t = match t.running with Some f -> f.req | None -> 0L

let set_current_req t r =
  match t.running with Some f -> f.req <- r | None -> ()

(** Mint a fresh engine-unique request id (never 0). *)
let next_req_id t =
  t.next_req <- Int64.add t.next_req 1L;
  t.next_req

(* Fire the advance hook for a move of the clock to [time] on behalf of
   fiber [fid]. Zero-delta moves are skipped: only real time needs owners. *)
let note_advance t time fid =
  match t.on_advance with
  | Some hook when Int64.compare time t.now > 0 ->
      hook (Int64.sub time t.now) fid
  | _ -> ()

(** Fiber id of the currently running fiber, or -1 outside fiber context
    (used by the tracer to attribute events to threads). *)
let current_fid t = match t.running with Some f -> f.fid | None -> -1

let schedule_owned t ~fid time f =
  if Int64.compare time t.now < 0 then
    invalid_arg "Engine.schedule_at: time in the past";
  t.seq <- t.seq + 1;
  Heap.push t.events ~time ~seq:t.seq (fid, f)

let schedule_at t time f = schedule_owned t ~fid:(-1) time f
let schedule_after t delay f = schedule_at t (Int64.add t.now delay) f

(* Run [f] as a fiber body under the engine's effect handler. *)
let start_fiber t fiber f =
  let open Effect.Deep in
  let saved = t.running in
  t.running <- Some fiber;
  (try
     match_with f ()
       {
         retc =
           (fun () ->
             (match t.on_fiber_exit with
             | Some hook -> hook fiber.fid
             | None -> ());
             fiber.dead <- true;
             t.live_fibers <- t.live_fibers - 1);
         exnc =
           (fun exn ->
             fiber.dead <- true;
             t.live_fibers <- t.live_fibers - 1;
             if t.failure = None then
               t.failure <- Some (fiber.name, exn, Printexc.get_raw_backtrace ()));
         effc =
           (fun (type a) (eff : a Effect.t) ->
             match eff with
             | Sleep d ->
                 Some
                   (fun (k : (a, _) continuation) ->
                     schedule_owned t ~fid:fiber.fid (Int64.add t.now d)
                       (fun () ->
                         let saved' = t.running in
                         t.running <- Some fiber;
                         continue k ();
                         t.running <- saved'))
             | Suspend register ->
                 Some
                   (fun (k : (a, _) continuation) ->
                     let fired = ref false in
                     register (fun () ->
                         if !fired then
                           invalid_arg "Engine: waker invoked twice";
                         fired := true;
                         schedule_owned t ~fid:fiber.fid t.now (fun () ->
                             let saved' = t.running in
                             t.running <- Some fiber;
                             continue k ();
                             t.running <- saved')))
             | Get_engine -> Some (fun (k : (a, _) continuation) -> continue k t)
             | _ -> None);
       }
   with exn ->
     t.running <- saved;
     raise exn);
  t.running <- saved

let spawn ?(name = "fiber") t f =
  let req = match t.running with Some f -> f.req | None -> 0L in
  let fiber = { fid = t.next_fid; name; dead = false; req } in
  t.next_fid <- t.next_fid + 1;
  t.live_fibers <- t.live_fibers + 1;
  schedule_owned t ~fid:fiber.fid t.now (fun () -> start_fiber t fiber f);
  fiber

(* Debug support: record what each blocked fiber is waiting on so that a
   Deadlock error can say something useful. The registry is global and
   fiber-keyed; fibers update it around their suspensions. *)
let blocked_reasons : (int, string) Hashtbl.t = Hashtbl.create 64

let check_failure t =
  match t.failure with
  | Some (name, exn, bt) ->
      t.failure <- None;
      Printexc.raise_with_backtrace (Fiber_failure (name, exn)) bt
  | None -> ()

(** Run until the event queue drains. Raises [Fiber_failure] if any fiber
    raised, [Deadlock] if fibers remain blocked with no pending event. *)
let run t =
  let rec loop () =
    match Heap.pop t.events with
    | None -> ()
    | Some { time; payload = fid, f; _ } ->
        note_advance t time fid;
        t.now <- time;
        (if t.trace && t.seq mod 1_000_000 = 0 then
           Printf.eprintf "EVT seq=%d now=%Ld\n%!" t.seq t.now);
        f ();
        check_failure t;
        loop ()
  in
  loop ();
  if t.live_fibers > 0 then begin
    let details =
      Hashtbl.fold (fun _ v acc -> v :: acc) blocked_reasons []
      |> List.sort compare |> String.concat "; "
    in
    raise
      (Deadlock
         (Printf.sprintf "%d fiber(s) still blocked at t=%Ldns [%s]"
            t.live_fibers t.now details))
  end

(** Run events up to and including virtual time [deadline]. Events after the
    deadline stay queued; blocked fibers are not a deadlock here. *)
let run_until t deadline =
  let rec loop () =
    match Heap.peek t.events with
    | None -> ()
    | Some { time; _ } when Int64.compare time deadline > 0 -> ()
    | Some _ ->
        (match Heap.pop t.events with
        | None -> ()
        | Some { time; payload = fid, f; _ } ->
            note_advance t time fid;
            t.now <- time;
            f ();
            check_failure t;
            loop ())
  in
  loop ();
  if Int64.compare t.now deadline < 0 then begin
    note_advance t deadline (-1);
    t.now <- deadline
  end

(* ------------------------------------------------------------------ *)
(* Operations usable from inside a fiber.                              *)

let self_engine () = Effect.perform Get_engine

let sleep d =
  if Int64.compare d 0L < 0 then invalid_arg "Engine.sleep: negative";
  if Int64.compare d 0L > 0 then Effect.perform (Sleep d)

let yield () = Effect.perform (Sleep 0L)

(** [suspend register] blocks the current fiber. [register] receives a waker
    which, when invoked (exactly once), reschedules the fiber at the waking
    moment. *)
let suspend register = Effect.perform (Suspend register)

let note_blocked reason =
  let t = Effect.perform Get_engine in
  match t.running with
  | Some f ->
      Hashtbl.replace blocked_reasons f.fid
        (Printf.sprintf "%s#%d waiting on %s" f.name f.fid reason)
  | None -> ()

let clear_blocked () =
  let t = Effect.perform Get_engine in
  match t.running with
  | Some f -> Hashtbl.remove blocked_reasons f.fid
  | None -> ()

let now_here () = (self_engine ()).now

(** Report a measured lock wait to the engine's hook (a no-op when none is
    installed). Called by the [Sync] primitives from the waiting fiber,
    right after it resumes, so the hook can see the fiber's context. *)
let note_lock_wait name wait_ns =
  let t = self_engine () in
  match t.on_lock_wait with
  | Some hook when Int64.compare wait_ns 0L > 0 -> hook name wait_ns
  | _ -> ()


