(** Virtual-time profiler with per-layer attribution.

    Maintains a per-fiber stack of layer frames and, via the engine's
    advance hook, charges every nanosecond of virtual time to exactly one
    folded stack — the current stack of the fiber whose wakeup caused the
    clock to move, or "idle" when that fiber has no frames. Consequently
    [attributed t = elapsed t] always holds while enabled (conservation).

    Layer names used across the tree: "vfs", "bcache", "log", "fs",
    "fuse-transport", "device-queue", "device-io", plus the synthetic
    "idle". *)

type t

val create : Engine.t -> t
(** A profiler bound to an engine; disabled until {!enable}. At most one
    profiler can be enabled per engine (it owns the advance hook). *)

val enabled : t -> bool

val enable : t -> unit
(** Start attributing: installs the engine advance hook and marks the
    current virtual time as the start of the profile. *)

val disable : t -> unit
(** Stop attributing (uninstalls the hook); accumulated data remains. *)

val reset : t -> unit
(** Drop accumulated data and restart the elapsed clock at [now]. *)

val with_frame : t -> string -> (unit -> 'a) -> 'a
(** [with_frame t layer f] runs [f] with [layer] pushed on the calling
    fiber's frame stack. Re-entering the layer already on top is a no-op
    (no "vfs;vfs" stacks). When the profiler is disabled this is just
    [f ()]. Exception-safe. *)

val elapsed : t -> int64
(** Virtual nanoseconds since {!enable} (or {!reset}). *)

val attributed : t -> int64
(** Sum of all charged self-times. Equals {!elapsed} while enabled. *)

val folded : t -> (string * int64) list
(** Folded stacks sorted by key, e.g. [("vfs;bcache;device-io", ns)]. The
    empty-stack bucket appears as ["idle"]. *)

val folded_output : t -> string
(** {!folded} rendered in the flamegraph collapsed-stack format: one
    "stack ns" line per distinct stack. *)

val lock_waits : t -> (string * int64) list
(** Lock-wait attribution, sorted by descending wait: each entry is
    ("<layer>/<lock>", ns) — the virtual time fibers whose innermost frame
    was <layer> spent blocked on the named mutex or rwlock. Blocked time
    overlaps other fibers' running time, so these are kept apart from the
    self-time tables and do not count toward {!attributed} (conservation
    is unaffected). *)

type layer_time = { layer : string; self_ns : int64; total_ns : int64 }

val summary : t -> layer_time list
(** Per-layer attribution: self = time with the layer innermost, total =
    time with the layer anywhere on the stack. Sorted by descending self
    time, "idle" last. The self times sum to {!attributed}. *)
