(** Array-based binary min-heap, specialised to [(int64 * int)] keys
    (event time, insertion sequence number). The sequence number makes event
    ordering total and hence the whole simulation deterministic.

    Slots are [entry option] so that popped entries are really gone: a
    vacated slot is reset to [None], and the backing array shrinks once the
    live size falls below a quarter of capacity. Otherwise payload closures
    (and everything they capture) would stay reachable from [arr] for the
    lifetime of the run. *)

type 'a entry = { time : int64; seq : int; payload : 'a }

type 'a t = { mutable arr : 'a entry option array; mutable size : int }

let min_capacity = 16

let create () = { arr = [||]; size = 0 }

let length h = h.size
let is_empty h = h.size = 0
let capacity h = Array.length h.arr

let lt a b =
  match Int64.compare a.time b.time with
  | 0 -> a.seq < b.seq
  | c -> c < 0

let get h i =
  match h.arr.(i) with
  | Some e -> e
  | None -> invalid_arg "Heap: empty slot in live region"

let grow h =
  let cap = Array.length h.arr in
  if h.size = cap then begin
    let ncap = if cap = 0 then min_capacity else cap * 2 in
    let narr = Array.make ncap None in
    Array.blit h.arr 0 narr 0 h.size;
    h.arr <- narr
  end

(* Halve the backing array when occupancy drops below 1/4 so a burst of
   events does not pin a large array (and its stale slots) forever. *)
let shrink h =
  let cap = Array.length h.arr in
  if cap > min_capacity && h.size < cap / 4 then begin
    let ncap = max min_capacity (cap / 2) in
    let narr = Array.make ncap None in
    Array.blit h.arr 0 narr 0 h.size;
    h.arr <- narr
  end

let push h ~time ~seq payload =
  let entry = { time; seq; payload } in
  grow h;
  h.arr.(h.size) <- Some entry;
  h.size <- h.size + 1;
  (* sift up *)
  let i = ref (h.size - 1) in
  while
    !i > 0
    &&
    let p = (!i - 1) / 2 in
    lt (get h !i) (get h p)
  do
    let p = (!i - 1) / 2 in
    let tmp = h.arr.(p) in
    h.arr.(p) <- h.arr.(!i);
    h.arr.(!i) <- tmp;
    i := p
  done

let peek h = if h.size = 0 then None else h.arr.(0)

let pop h =
  if h.size = 0 then None
  else begin
    let top = get h 0 in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.arr.(0) <- h.arr.(h.size);
      h.arr.(h.size) <- None;
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && lt (get h l) (get h !smallest) then smallest := l;
        if r < h.size && lt (get h r) (get h !smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = h.arr.(!smallest) in
          h.arr.(!smallest) <- h.arr.(!i);
          h.arr.(!i) <- tmp;
          i := !smallest
        end
      done
    end
    else h.arr.(0) <- None;
    shrink h;
    Some top
  end
