(** Named counters, latency accumulators, and log-bucketed histograms, used
    across the kernel, device, and workloads to report utilisation and
    per-op statistics. *)

module Counter = struct
  type t = { name : string; mutable value : int64 }

  let create name = { name; value = 0L }
  let incr ?(by = 1) t = t.value <- Int64.add t.value (Int64.of_int by)
  let add64 t v = t.value <- Int64.add t.value v
  let get t = t.value
  let get_int t = Int64.to_int t.value
  let reset t = t.value <- 0L
  let name t = t.name
end

module Latency = struct
  type t = {
    name : string;
    mutable count : int;
    mutable total : int64;
    mutable min : int64;
    mutable max : int64;
  }

  let create name = { name; count = 0; total = 0L; min = Int64.max_int; max = 0L }

  let record t dur =
    t.count <- t.count + 1;
    t.total <- Int64.add t.total dur;
    if Int64.compare dur t.min < 0 then t.min <- dur;
    if Int64.compare dur t.max > 0 then t.max <- dur

  let count t = t.count
  let total t = t.total
  let mean t = if t.count = 0 then 0L else Int64.div t.total (Int64.of_int t.count)
  let min_ns t = if t.count = 0 then 0L else t.min
  let max_ns t = t.max
  let name t = t.name
  let reset t =
    t.count <- 0;
    t.total <- 0L;
    t.min <- Int64.max_int;
    t.max <- 0L
end

(** Log-bucketed histogram of non-negative durations (virtual nanoseconds).

    HDR-style bucketing: values below 32 are exact; above that, each power
    of two is split into 16 sub-buckets, bounding the relative error of any
    reported quantile to < 1/16 (~6%). Recording is O(1) with no
    allocation, so it is cheap enough for per-operation latencies on the
    simulation's hot paths. *)
module Histogram = struct
  let sub_bits = 4
  let nsub = 1 lsl sub_bits (* 16 sub-buckets per power of two *)
  let nbuckets = (63 - sub_bits) * nsub (* covers the full 62-bit range *)

  type t = {
    name : string;
    buckets : int array;
    mutable count : int;
    mutable total : int64;
    mutable min : int64;
    mutable max : int64;
  }

  let create name =
    {
      name;
      buckets = Array.make nbuckets 0;
      count = 0;
      total = 0L;
      min = Int64.max_int;
      max = 0L;
    }

  let msb_pos v =
    let rec go v acc = if v <= 1 then acc else go (v lsr 1) (acc + 1) in
    go v 0

  (* Values 0..31 map to buckets 0..31 exactly; beyond that bucket
     (m - sub_bits + 1) * nsub + sub where m is the top bit position. *)
  let bucket_of v =
    let v = Int64.to_int v in
    let v = if v < 0 then 0 else v in
    if v < 2 * nsub then v
    else
      let m = msb_pos v in
      let sub = (v lsr (m - sub_bits)) land (nsub - 1) in
      (((m - sub_bits) + 1) * nsub) + sub

  (* Inclusive [lo, hi] range of values falling into bucket [i]. *)
  let bucket_range i =
    if i < 2 * nsub then (Int64.of_int i, Int64.of_int i)
    else begin
      let m = (i / nsub) + sub_bits - 1 in
      let sub = i mod nsub in
      let lo = (1 lsl m) lor (sub lsl (m - sub_bits)) in
      let width = 1 lsl (m - sub_bits) in
      (Int64.of_int lo, Int64.of_int (lo + width - 1))
    end

  let record t dur =
    let dur = if Int64.compare dur 0L < 0 then 0L else dur in
    t.buckets.(bucket_of dur) <- t.buckets.(bucket_of dur) + 1;
    t.count <- t.count + 1;
    t.total <- Int64.add t.total dur;
    if Int64.compare dur t.min < 0 then t.min <- dur;
    if Int64.compare dur t.max > 0 then t.max <- dur

  let count t = t.count
  let total t = t.total
  let mean t = if t.count = 0 then 0L else Int64.div t.total (Int64.of_int t.count)
  let min_ns t = if t.count = 0 then 0L else t.min
  let max_ns t = t.max
  let name t = t.name

  (** [percentile t q] for [q] in [0, 100]: the smallest recorded-bucket
      value v such that at least q% of samples are <= v. Exact below 32 ns;
      within one sub-bucket (< ~6%) above. The top bucket is clamped to the
      recorded maximum so p100 = max, and q = 0 reports the recorded
      minimum directly — the rank-1 bucket's upper bound can exceed the
      minimum (e.g. a single sample of 32 lands in bucket [32..33], whose
      bound is 33), which would break the p0 = min invariant the property
      tests check. Since min <= every bucket bound, the special case also
      keeps percentiles monotone in q. *)
  let percentile t q =
    if t.count = 0 then 0L
    else if Float.compare q 0. <= 0 then t.min
    else begin
      let q = if Float.compare q 100. > 0 then 100. else q in
      let rank =
        let r = int_of_float (ceil (q /. 100. *. float_of_int t.count)) in
        if r < 1 then 1 else if r > t.count then t.count else r
      in
      let rec walk i seen =
        if i >= nbuckets then t.max
        else begin
          let seen = seen + t.buckets.(i) in
          if seen >= rank then begin
            let _, hi = bucket_range i in
            if Int64.compare hi t.max > 0 then t.max else hi
          end
          else walk (i + 1) seen
        end
      in
      walk 0 0
    end

  let iter_buckets t f =
    Array.iteri
      (fun i c ->
        if c > 0 then begin
          let lo, hi = bucket_range i in
          f ~lo ~hi ~count:c
        end)
      t.buckets

  let reset t =
    Array.fill t.buckets 0 nbuckets 0;
    t.count <- 0;
    t.total <- 0L;
    t.min <- Int64.max_int;
    t.max <- 0L
end

(** A registry so components can expose their counters by name. *)
type t = {
  counters : (string, Counter.t) Hashtbl.t;
  latencies : (string, Latency.t) Hashtbl.t;
  histograms : (string, Histogram.t) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 64;
    latencies = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
  }

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
      let c = Counter.create name in
      Hashtbl.add t.counters name c;
      c

let latency t name =
  match Hashtbl.find_opt t.latencies name with
  | Some l -> l
  | None ->
      let l = Latency.create name in
      Hashtbl.add t.latencies name l;
      l

let histogram t name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> h
  | None ->
      let h = Histogram.create name in
      Hashtbl.add t.histograms name h;
      h

let iter_sorted tbl f =
  let items =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter (fun (k, v) -> f k v) items

let iter_counters t f = iter_sorted t.counters f
let iter_latencies t f = iter_sorted t.latencies f
let iter_histograms t f = iter_sorted t.histograms f

let reset t =
  Hashtbl.iter (fun _ c -> Counter.reset c) t.counters;
  Hashtbl.iter (fun _ l -> Latency.reset l) t.latencies;
  Hashtbl.iter (fun _ h -> Histogram.reset h) t.histograms
