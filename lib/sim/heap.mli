(** Array-based binary min-heap keyed by (time, sequence), the engine's
    event queue. The sequence number totalises the order, which is what
    makes whole simulations deterministic. *)

type 'a entry = { time : int64; seq : int; payload : 'a }

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

(** Current backing-array size. Popped slots are cleared and the array
    shrinks at 1/4 occupancy, so popped payloads are unreachable. *)
val capacity : 'a t -> int
val push : 'a t -> time:int64 -> seq:int -> 'a -> unit
val peek : 'a t -> 'a entry option
val pop : 'a t -> 'a entry option
