(** Span/event tracer over virtual time.

    Begin/end spans and instant events are stamped with the engine's
    virtual clock, the running fiber's id, and the fiber's request context
    ({!Engine.current_req}), and kept in a bounded ring buffer (oldest
    events dropped first). Disabled — the default — every emit is a single
    branch, and tracing never affects virtual time in either state.
    Flow events record cross-fiber causal edges (submit on one fiber,
    complete on another); {!Causal} reassembles an event stream into
    per-request DAGs. Exports Chrome trace-event JSON for chrome://tracing
    / Perfetto, with fibers as threads and flows as bound arrows. *)

type phase = Begin | End | Instant | Counter | Flow_start | Flow_finish

type event = {
  ph : phase;
  name : string;
  cat : string;
  ts : int64;  (** virtual nanoseconds *)
  tid : int;  (** fiber id, -1 outside fiber context *)
  value : int64;
      (** sample value for [Counter] events, flow-edge id for
          [Flow_start]/[Flow_finish], 0 otherwise *)
  req : int64;  (** request context at emit time, 0 = none *)
}

exception Unbalanced_span of string
(** Raised in debug mode on a mismatched [span_end] or when a fiber exits
    with a span still open. *)

type t

val create : ?capacity:int -> Engine.t -> t
(** A disabled tracer with a ring of [capacity] events (default 65536). *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val set_capacity : t -> int -> unit
(** Replace the ring with a fresh one of the given capacity, clearing any
    retained events. Long traced runs (server bench sweeps) need more than
    the default to keep whole requests from being overwritten. *)

val set_debug : t -> bool -> unit
(** Debug mode: track span begin/end balance per fiber; a mismatched end
    or a fiber exiting with an open span raises {!Unbalanced_span} instead
    of silently truncating the trace. Installs the engine's fiber-exit
    hook while on. Only spans actually emitted (tracer enabled) are
    tracked. *)

val debug : t -> bool

val span_begin : t -> ?cat:string -> string -> unit
val span_end : t -> ?cat:string -> string -> unit
val instant : t -> ?cat:string -> string -> unit

val counter : t -> ?cat:string -> string -> int64 -> unit
(** Sample a named counter time-series (queue depth, dirty pages, log free
    space, ...). Exported as a Chrome counter event (["ph":"C"]) so it
    renders as a track in Perfetto alongside the spans. *)

val flow_begin : t -> ?cat:string -> string -> int64
(** Open a causal flow edge at the current (fiber, time) and return its
    edge id, to be handed (through a completion record, queue entry, ...)
    to whichever fiber continues the work. Returns 0 when the tracer is
    disabled; {!flow_end} treats 0 as a no-op. Exported as ["ph":"s"]. *)

val flow_end : t -> ?cat:string -> string -> int64 -> unit
(** Close a flow edge on the receiving fiber. Exported as ["ph":"f"] with
    [bp:"e"], which Perfetto draws as an arrow from the opening slice to
    the enclosing slice's end. *)

val with_span : t -> ?cat:string -> string -> (unit -> 'a) -> 'a
(** Run a function inside a begin/end pair (ended on exceptions too). When
    disabled this is just a call to the function. *)

val events : t -> event list
(** Retained events, oldest first; timestamps are nondecreasing. *)

val length : t -> int
val dropped : t -> int
(** Events overwritten after the ring filled. *)

val clear : t -> unit

(** Per-request causal reconstruction over a flat event stream. *)
module Causal : sig
  type request = {
    req : int64;
    fibers : int list;  (** distinct fids that emitted for this request *)
    spans : int;  (** Begin events *)
    flow_edges : int;  (** matched start/finish pairs *)
    orphan_finishes : int;  (** finishes whose edge has no start here *)
    connected : bool;
        (** all fibers reachable from one another via flow edges *)
  }

  val requests : event list -> request list
  (** Group by request id (reqid-0 background events ignored) and
      reconstruct each request's graph: fibers are nodes, matched flow
      edges connect them. *)

  val connected_ratio : event list -> float
  (** Fraction of requests whose graph is connected with no orphan
      finishes; 1.0 when the stream contains no requests. *)
end

val write_events :
  Buffer.t -> pid:int -> ?process_name:string -> first:bool -> t -> bool
(** Append the events as comma-separated Chrome trace objects (no
    brackets), under process id [pid] — for combining several runs into one
    file. [first] suppresses the leading comma; returns true if anything
    was written. *)

val to_chrome_json : ?pid:int -> ?process_name:string -> t -> string
(** A complete Chrome trace-event JSON document ("JSON array format"). *)
