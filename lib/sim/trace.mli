(** Span/event tracer over virtual time.

    Begin/end spans and instant events are stamped with the engine's
    virtual clock and the running fiber's id, and kept in a bounded ring
    buffer (oldest events dropped first). Disabled — the default — every
    emit is a single branch, and tracing never affects virtual time in
    either state. Exports Chrome trace-event JSON for chrome://tracing /
    Perfetto, with fibers as threads. *)

type phase = Begin | End | Instant | Counter

type event = {
  ph : phase;
  name : string;
  cat : string;
  ts : int64;  (** virtual nanoseconds *)
  tid : int;  (** fiber id, -1 outside fiber context *)
  value : int64;  (** sample value for [Counter] events, 0 otherwise *)
}

type t

val create : ?capacity:int -> Engine.t -> t
(** A disabled tracer with a ring of [capacity] events (default 65536). *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val span_begin : t -> ?cat:string -> string -> unit
val span_end : t -> ?cat:string -> string -> unit
val instant : t -> ?cat:string -> string -> unit

val counter : t -> ?cat:string -> string -> int64 -> unit
(** Sample a named counter time-series (queue depth, dirty pages, log free
    space, ...). Exported as a Chrome counter event (["ph":"C"]) so it
    renders as a track in Perfetto alongside the spans. *)

val with_span : t -> ?cat:string -> string -> (unit -> 'a) -> 'a
(** Run a function inside a begin/end pair (ended on exceptions too). When
    disabled this is just a call to the function. *)

val events : t -> event list
(** Retained events, oldest first; timestamps are nondecreasing. *)

val length : t -> int
val dropped : t -> int
(** Events overwritten after the ring filled. *)

val clear : t -> unit

val write_events :
  Buffer.t -> pid:int -> ?process_name:string -> first:bool -> t -> bool
(** Append the events as comma-separated Chrome trace objects (no
    brackets), under process id [pid] — for combining several runs into one
    file. [first] suppresses the leading comma; returns true if anything
    was written. *)

val to_chrome_json : ?pid:int -> ?process_name:string -> t -> string
(** A complete Chrome trace-event JSON document ("JSON array format"). *)
