(** Always-on flight recorder: fixed-size per-CPU rings of compact recent
    events with triggered dumps.

    Recording is a few stores into a preallocated ring — no sleeps, no CPU
    accounting — so the recorder is invisible to virtual time by
    construction and cheap enough to leave on in every bench run. On a
    trigger (slow op, error return, oracle firing) the merged rings plus
    the offending request's full causal trace are rendered to text, kept
    in memory, optionally written to a dump directory, and handed to a
    hook. *)

type severity = Debug | Info | Warn | Error

val severity_label : severity -> string

type entry = {
  e_ts : int64;  (** virtual nanoseconds *)
  e_fid : int;
  e_req : int64;  (** request context at record time, 0 = none *)
  e_sev : severity;
  e_kind : string;  (** event class: "syscall", "printk", "trigger", ... *)
  e_msg : string;
}

type t

val create : ?ring_size:int -> ?cpus:int -> Engine.t -> Trace.t -> t
(** An enabled recorder with [cpus] rings (default 4) of [ring_size]
    entries each (default 512). The tracer is consulted at dump time for
    the offending request's causal events. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val note : ?sev:severity -> t -> kind:string -> string -> unit
(** Record one entry into the ring of the CPU the current fiber hashes
    to. *)

val entries : t -> entry list
(** Ring contents merged across CPUs, oldest first. *)

val recorded : t -> int
(** Entries ever recorded (including overwritten ones). *)

val clear : t -> unit

val trigger : ?req:int64 -> t -> string -> bool
(** [trigger t reason] dumps the ring plus the causal trace of [req]
    (default: the current request context) — kept as {!last_dump}, written
    to the dump directory when one is set, handed to the {!set_on_dump}
    hook. Rate-limited by {!set_max_dumps}; returns whether a dump was
    produced. *)

val render : t -> reason:string -> req:int64 -> string
(** The dump text without triggering (used by CLI/CI to export the ring
    on demand). *)

val dump_count : t -> int
val set_max_dumps : t -> int -> unit
val set_dump_dir : t -> string option -> unit
val set_on_dump : t -> (string -> string -> unit) option -> unit
val last_dump : t -> (string * string) option
(** Most recent (reason, content). *)
