(** Span/event tracer over virtual time.

    Layers emit begin/end spans and instant events stamped with the
    engine's virtual clock and the running fiber's id. Events land in a
    bounded ring buffer (oldest dropped first), so tracing a long run costs
    a fixed amount of memory. A disabled tracer reduces every emit to one
    branch — and never perturbs virtual time either way, since emitting
    performs no sleeps and no CPU accounting.

    Export is Chrome trace-event JSON (the "JSON array format"), loadable
    in chrome://tracing and Perfetto: spans become B/E pairs, instants
    become "i" events, fibers map to tids. *)

type phase = Begin | End | Instant | Counter

type event = {
  ph : phase;
  name : string;
  cat : string;
  ts : int64;  (** virtual nanoseconds *)
  tid : int;  (** fiber id, -1 outside fiber context *)
  value : int64;  (** sample value for [Counter] events, 0 otherwise *)
}

type t = {
  engine : Engine.t;
  mutable enabled : bool;
  ring : event option array;
  mutable head : int;  (** next slot to write *)
  mutable len : int;
  mutable dropped : int;
}

let default_capacity = 1 lsl 16

let create ?(capacity = default_capacity) engine =
  if capacity < 1 then invalid_arg "Trace.create";
  {
    engine;
    enabled = false;
    ring = Array.make capacity None;
    head = 0;
    len = 0;
    dropped = 0;
  }

let enabled t = t.enabled
let set_enabled t b = t.enabled <- b
let dropped t = t.dropped
let length t = t.len

let clear t =
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.head <- 0;
  t.len <- 0;
  t.dropped <- 0

let emit ?(value = 0L) t ph cat name =
  let cap = Array.length t.ring in
  if t.len = cap then t.dropped <- t.dropped + 1 else t.len <- t.len + 1;
  t.ring.(t.head) <-
    Some
      {
        ph;
        name;
        cat;
        ts = Engine.now t.engine;
        tid = Engine.current_fid t.engine;
        value;
      };
  t.head <- (t.head + 1) mod cap

let span_begin t ?(cat = "") name = if t.enabled then emit t Begin cat name
let span_end t ?(cat = "") name = if t.enabled then emit t End cat name
let instant t ?(cat = "") name = if t.enabled then emit t Instant cat name

(** Record a sample of a named counter time-series (queue depth, dirty
    pages, ...). Exports as a Chrome "C" event, which Perfetto renders as a
    counter track alongside the spans. *)
let counter t ?(cat = "") name value =
  if t.enabled then emit ~value t Counter cat name

let with_span t ?cat name f =
  if not t.enabled then f ()
  else begin
    span_begin t ?cat name;
    match f () with
    | v ->
        span_end t ?cat name;
        v
    | exception exn ->
        span_end t ?cat name;
        raise exn
  end

(** Events oldest-first (and therefore nondecreasing in [ts]). *)
let events t =
  let cap = Array.length t.ring in
  let first = (t.head - t.len + cap * 2) mod cap in
  List.init t.len (fun i ->
      match t.ring.((first + i) mod cap) with
      | Some e -> e
      | None -> assert false)

(* ------------------------------------------------------------------ *)
(* Chrome trace-event JSON export.                                     *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

(* Chrome timestamps are microseconds; keep full nanosecond precision as a
   decimal fraction so virtual-time ordering survives the unit change. *)
let add_ts buf ts =
  Buffer.add_string buf
    (Printf.sprintf "%Ld.%03Ld" (Int64.div ts 1000L)
       (Int64.rem ts 1000L))

let add_event buf ~pid e =
  Buffer.add_string buf "{\"name\":\"";
  escape_into buf e.name;
  Buffer.add_string buf "\",\"cat\":\"";
  escape_into buf (if e.cat = "" then "sim" else e.cat);
  Buffer.add_string buf "\",\"ph\":\"";
  Buffer.add_string buf
    (match e.ph with
    | Begin -> "B"
    | End -> "E"
    | Instant -> "i"
    | Counter -> "C");
  Buffer.add_string buf "\",\"ts\":";
  add_ts buf e.ts;
  Buffer.add_string buf (Printf.sprintf ",\"pid\":%d,\"tid\":%d" pid e.tid);
  (match e.ph with
  | Instant -> Buffer.add_string buf ",\"s\":\"t\"}"
  | Counter ->
      (* args key = series name within the track named by the event *)
      Buffer.add_string buf ",\"args\":{\"value\":";
      Buffer.add_string buf (Int64.to_string e.value);
      Buffer.add_string buf "}}"
  | _ -> Buffer.add_char buf '}')

(** Append this tracer's events to [buf] as comma-separated JSON objects
    (no surrounding brackets), for embedding several runs — each under its
    own [pid] — into one trace file. [first] tells the writer whether a
    leading comma is needed; returns whether anything was written. *)
let write_events buf ~pid ?process_name ~first t =
  let sep = ref (not first) in
  let wrote = ref false in
  let comma () =
    if !sep then Buffer.add_char buf ',';
    sep := true;
    wrote := true
  in
  (match process_name with
  | Some pname ->
      comma ();
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\""
           pid);
      escape_into buf pname;
      Buffer.add_string buf "\"}}"
  | None -> ());
  List.iter
    (fun e ->
      comma ();
      add_event buf ~pid e)
    (events t);
  !wrote

(** The whole tracer as one self-contained Chrome trace JSON document. *)
let to_chrome_json ?(pid = 1) ?process_name t =
  let buf = Buffer.create 4096 in
  Buffer.add_char buf '[';
  ignore (write_events buf ~pid ?process_name ~first:true t);
  Buffer.add_char buf ']';
  Buffer.contents buf
