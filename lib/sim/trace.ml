(** Span/event tracer over virtual time.

    Layers emit begin/end spans and instant events stamped with the
    engine's virtual clock and the running fiber's id. Events land in a
    bounded ring buffer (oldest dropped first), so tracing a long run costs
    a fixed amount of memory. A disabled tracer reduces every emit to one
    branch — and never perturbs virtual time either way, since emitting
    performs no sleeps and no CPU accounting.

    Every event also carries the engine's *request context*
    ({!Engine.current_req}): fibers inherit it at spawn, so one request's
    events keep the same reqid across async hops. Flow events
    ([flow_begin]/[flow_end]) record the cross-fiber edges themselves —
    submit on one fiber, complete on another — which is what lets a
    request's trace be reassembled into a connected causal DAG
    (see {!Causal}).

    Export is Chrome trace-event JSON (the "JSON array format"), loadable
    in chrome://tracing and Perfetto: spans become B/E pairs, instants
    become "i" events, flows become "s"/"f" pairs bound by id, fibers map
    to tids. *)

type phase = Begin | End | Instant | Counter | Flow_start | Flow_finish

type event = {
  ph : phase;
  name : string;
  cat : string;
  ts : int64;  (** virtual nanoseconds *)
  tid : int;  (** fiber id, -1 outside fiber context *)
  value : int64;
      (** sample value for [Counter] events, flow-edge id for
          [Flow_start]/[Flow_finish], 0 otherwise *)
  req : int64;  (** request context at emit time, 0 = none *)
}

exception Unbalanced_span of string
(** Raised (in debug mode) when a fiber exits with a span still open. *)

type t = {
  engine : Engine.t;
  mutable enabled : bool;
  mutable ring : event option array;
  mutable head : int;  (** next slot to write *)
  mutable len : int;
  mutable dropped : int;
  mutable next_flow : int64;  (** flow-edge id mint (tracer-unique) *)
  mutable debug : bool;
  open_spans : (int, string list ref) Hashtbl.t;
      (** debug mode: per-fid stack of currently open span names *)
}

let default_capacity = 1 lsl 16

let create ?(capacity = default_capacity) engine =
  if capacity < 1 then invalid_arg "Trace.create";
  {
    engine;
    enabled = false;
    ring = Array.make capacity None;
    head = 0;
    len = 0;
    dropped = 0;
    next_flow = 0L;
    debug = false;
    open_spans = Hashtbl.create 64;
  }

let enabled t = t.enabled
let set_enabled t b = t.enabled <- b
let dropped t = t.dropped
let length t = t.len

let clear t =
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.head <- 0;
  t.len <- 0;
  t.dropped <- 0;
  Hashtbl.reset t.open_spans

(** Resize the ring (clearing retained events). Long traced runs — the
    server bench sweeps — need more than the default 64 Ki events to keep
    whole requests from being overwritten mid-flight. *)
let set_capacity t capacity =
  if capacity < 1 then invalid_arg "Trace.set_capacity";
  t.ring <- Array.make capacity None;
  t.head <- 0;
  t.len <- 0;
  t.dropped <- 0

let emit ?(value = 0L) t ph cat name =
  let cap = Array.length t.ring in
  if t.len = cap then t.dropped <- t.dropped + 1 else t.len <- t.len + 1;
  t.ring.(t.head) <-
    Some
      {
        ph;
        name;
        cat;
        ts = Engine.now t.engine;
        tid = Engine.current_fid t.engine;
        value;
        req = Engine.current_req t.engine;
      };
  t.head <- (t.head + 1) mod cap

(* Debug-mode open-span bookkeeping. Only spans actually emitted are
   tracked, so the check costs nothing unless both tracing and debug are
   on. *)
let track_begin t name =
  let fid = Engine.current_fid t.engine in
  if fid >= 0 then
    match Hashtbl.find_opt t.open_spans fid with
    | Some stack -> stack := name :: !stack
    | None -> Hashtbl.replace t.open_spans fid (ref [ name ])

let track_end t name =
  let fid = Engine.current_fid t.engine in
  if fid >= 0 then
    match Hashtbl.find_opt t.open_spans fid with
    | Some ({ contents = top :: rest } as stack) when top = name ->
        stack := rest;
        if rest = [] then Hashtbl.remove t.open_spans fid
    | Some { contents = stack } ->
        raise
          (Unbalanced_span
             (Printf.sprintf
                "span_end %S on fiber %d does not match open span%s [%s]" name
                fid
                (if stack = [] then "" else "s")
                (String.concat "; " stack)))
    | None ->
        raise
          (Unbalanced_span
             (Printf.sprintf "span_end %S on fiber %d with no span open" name
                fid))

let fiber_exit_check t fid =
  match Hashtbl.find_opt t.open_spans fid with
  | Some { contents = stack } when stack <> [] ->
      Hashtbl.remove t.open_spans fid;
      raise
        (Unbalanced_span
           (Printf.sprintf "fiber %d exited with open span%s [%s]" fid
              (if List.length stack = 1 then "" else "s")
              (String.concat "; " stack)))
  | _ -> ()

(** Debug mode: track begin/end balance per fiber and raise
    {!Unbalanced_span} on a mismatched end or a fiber exiting with a span
    still open (instead of silently truncating the trace). Installs the
    engine's fiber-exit hook while on. *)
let set_debug t b =
  t.debug <- b;
  Hashtbl.reset t.open_spans;
  Engine.set_fiber_exit_hook t.engine
    (if b then Some (fun fid -> fiber_exit_check t fid) else None)

let debug t = t.debug

let span_begin t ?(cat = "") name =
  if t.enabled then begin
    emit t Begin cat name;
    if t.debug then track_begin t name
  end

let span_end t ?(cat = "") name =
  if t.enabled then begin
    emit t End cat name;
    if t.debug then track_end t name
  end

let instant t ?(cat = "") name = if t.enabled then emit t Instant cat name

(** Record a sample of a named counter time-series (queue depth, dirty
    pages, ...). Exports as a Chrome "C" event, which Perfetto renders as a
    counter track alongside the spans. *)
let counter t ?(cat = "") name value =
  if t.enabled then emit ~value t Counter cat name

(** Open a flow edge at the current (fiber, time): returns the edge id to
    hand to whoever continues the work. 0 when disabled — [flow_end]
    ignores it. *)
let flow_begin t ?(cat = "") name =
  if not t.enabled then 0L
  else begin
    t.next_flow <- Int64.add t.next_flow 1L;
    emit ~value:t.next_flow t Flow_start cat name;
    t.next_flow
  end

(** Close a flow edge on the receiving fiber. An id of 0 (from a disabled
    [flow_begin]) is a no-op. *)
let flow_end t ?(cat = "") name id =
  if t.enabled && id <> 0L then emit ~value:id t Flow_finish cat name

let with_span t ?cat name f =
  if not t.enabled then f ()
  else begin
    span_begin t ?cat name;
    match f () with
    | v ->
        span_end t ?cat name;
        v
    | exception exn ->
        span_end t ?cat name;
        raise exn
  end

(** Events oldest-first (and therefore nondecreasing in [ts]). *)
let events t =
  let cap = Array.length t.ring in
  let first = (t.head - t.len + cap * 2) mod cap in
  List.init t.len (fun i ->
      match t.ring.((first + i) mod cap) with
      | Some e -> e
      | None -> assert false)

(* ------------------------------------------------------------------ *)
(* Causal reconstruction: regroup a flat event stream per request and   *)
(* check each request forms one connected DAG.                          *)

module Causal = struct
  type request = {
    req : int64;
    fibers : int list;  (** distinct fids that emitted for this request *)
    spans : int;  (** Begin events *)
    flow_edges : int;  (** matched start/finish pairs *)
    orphan_finishes : int;  (** finishes whose edge has no start here *)
    connected : bool;
        (** all fibers reachable from one another via flow edges *)
  }

  (* Union-find over fids, local to one request's reconstruction. *)
  let rec find parent x =
    match Hashtbl.find_opt parent x with
    | Some p when p <> x ->
        let r = find parent p in
        Hashtbl.replace parent x r;
        r
    | _ -> x

  let union parent a b =
    let ra = find parent a and rb = find parent b in
    if ra <> rb then Hashtbl.replace parent ra rb

  let reconstruct_one req evs =
    let parent = Hashtbl.create 16 in
    let touch fid = if not (Hashtbl.mem parent fid) then Hashtbl.replace parent fid fid in
    let starts = Hashtbl.create 16 in  (* edge id -> start tid *)
    let spans = ref 0 in
    List.iter
      (fun e ->
        touch e.tid;
        match e.ph with
        | Begin -> incr spans
        | Flow_start -> Hashtbl.replace starts e.value e.tid
        | _ -> ())
      evs;
    let flow_edges = ref 0 and orphans = ref 0 in
    List.iter
      (fun e ->
        match e.ph with
        | Flow_finish -> (
            match Hashtbl.find_opt starts e.value with
            | Some start_tid ->
                incr flow_edges;
                union parent start_tid e.tid
            | None -> incr orphans)
        | _ -> ())
      evs;
    let fibers = Hashtbl.fold (fun fid _ acc -> fid :: acc) parent [] in
    let connected =
      match fibers with
      | [] -> true
      | first :: rest ->
          let r = find parent first in
          List.for_all (fun f -> find parent f = r) rest
    in
    {
      req;
      fibers = List.sort compare fibers;
      spans = !spans;
      flow_edges = !flow_edges;
      orphan_finishes = !orphans;
      connected;
    }

  (** Group [evs] by request id (ignoring reqid-0 background events) and
      reconstruct each request's causal graph: fibers are nodes, matched
      flow edges connect them. *)
  let requests evs =
    let by_req : (int64, event list ref) Hashtbl.t = Hashtbl.create 256 in
    let order = ref [] in
    List.iter
      (fun (e : event) ->
        if e.req <> 0L then
          match Hashtbl.find_opt by_req e.req with
          | Some l -> l := e :: !l
          | None ->
              Hashtbl.replace by_req e.req (ref [ e ]);
              order := e.req :: !order)
      evs;
    List.rev_map
      (fun req ->
        let evs = List.rev !(Hashtbl.find by_req req) in
        reconstruct_one req evs)
      !order

  (** Fraction of requests whose graph is connected with no orphan
      finishes (1.0 when there are no requests at all). *)
  let connected_ratio evs =
    let rs = requests evs in
    match rs with
    | [] -> 1.0
    | _ ->
        let good =
          List.length
            (List.filter (fun r -> r.connected && r.orphan_finishes = 0) rs)
        in
        float_of_int good /. float_of_int (List.length rs)
end

(* ------------------------------------------------------------------ *)
(* Chrome trace-event JSON export.                                     *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

(* Chrome timestamps are microseconds; keep full nanosecond precision as a
   decimal fraction so virtual-time ordering survives the unit change. *)
let add_ts buf ts =
  Buffer.add_string buf
    (Printf.sprintf "%Ld.%03Ld" (Int64.div ts 1000L)
       (Int64.rem ts 1000L))

let add_event buf ~pid e =
  Buffer.add_string buf "{\"name\":\"";
  escape_into buf e.name;
  Buffer.add_string buf "\",\"cat\":\"";
  escape_into buf (if e.cat = "" then "sim" else e.cat);
  Buffer.add_string buf "\",\"ph\":\"";
  Buffer.add_string buf
    (match e.ph with
    | Begin -> "B"
    | End -> "E"
    | Instant -> "i"
    | Counter -> "C"
    | Flow_start -> "s"
    | Flow_finish -> "f");
  Buffer.add_string buf "\",\"ts\":";
  add_ts buf e.ts;
  Buffer.add_string buf (Printf.sprintf ",\"pid\":%d,\"tid\":%d" pid e.tid);
  (match e.ph with
  | Instant -> Buffer.add_string buf ",\"s\":\"t\"}"
  | Counter ->
      (* args key = series name within the track named by the event *)
      Buffer.add_string buf ",\"args\":{\"value\":";
      Buffer.add_string buf (Int64.to_string e.value);
      Buffer.add_string buf "}}"
  | Flow_start ->
      Buffer.add_string buf (Printf.sprintf ",\"id\":%Ld" e.value);
      if e.req <> 0L then
        Buffer.add_string buf
          (Printf.sprintf ",\"args\":{\"reqid\":%Ld}" e.req);
      Buffer.add_char buf '}'
  | Flow_finish ->
      (* bp:"e" binds the arrow to the enclosing slice's end, the Perfetto
         convention for completion-style flows *)
      Buffer.add_string buf
        (Printf.sprintf ",\"id\":%Ld,\"bp\":\"e\"" e.value);
      if e.req <> 0L then
        Buffer.add_string buf
          (Printf.sprintf ",\"args\":{\"reqid\":%Ld}" e.req);
      Buffer.add_char buf '}'
  | Begin when e.req <> 0L ->
      Buffer.add_string buf
        (Printf.sprintf ",\"args\":{\"reqid\":%Ld}}" e.req)
  | _ -> Buffer.add_char buf '}')

(** Append this tracer's events to [buf] as comma-separated JSON objects
    (no surrounding brackets), for embedding several runs — each under its
    own [pid] — into one trace file. [first] tells the writer whether a
    leading comma is needed; returns whether anything was written. *)
let write_events buf ~pid ?process_name ~first t =
  let sep = ref (not first) in
  let wrote = ref false in
  let comma () =
    if !sep then Buffer.add_char buf ',';
    sep := true;
    wrote := true
  in
  (match process_name with
  | Some pname ->
      comma ();
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\""
           pid);
      escape_into buf pname;
      Buffer.add_string buf "\"}}"
  | None -> ());
  List.iter
    (fun e ->
      comma ();
      add_event buf ~pid e)
    (events t);
  !wrote

(** The whole tracer as one self-contained Chrome trace JSON document. *)
let to_chrome_json ?(pid = 1) ?process_name t =
  let buf = Buffer.create 4096 in
  Buffer.add_char buf '[';
  ignore (write_events buf ~pid ?process_name ~first:true t);
  Buffer.add_char buf ']';
  Buffer.contents buf
