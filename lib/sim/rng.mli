(** Deterministic splittable RNG (splitmix64). Consumers derive private
    streams with {!split} so adding one consumer never perturbs another —
    a requirement for reproducible benchmarks. *)

type t

val create : int -> t

val seed : t -> int
(** The seed this stream was created with (for [split] streams, a derived
    value). Printed by failing randomized tests so any failure reproduces
    with one command. *)

val next_int64 : t -> int64

val split : t -> t
(** An independent stream derived from (and advancing) this one. *)

val int : t -> int -> int
(** Uniform in [0, bound). *)

val bool : t -> bool

val float : t -> float
(** Uniform in [0, 1). *)

val float_range : t -> float -> float -> float

val exponential : t -> mean:float -> float
(** Exponentially distributed, e.g. file sizes around a mean. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** Lognormal via Box-Muller; source-tree file-size distributions. *)

val zipf : t -> n:int -> theta:float -> int
(** Rank-biased choice in [0, n): hot/cold file selection. *)

val shuffle : t -> 'a array -> unit
