(** Deterministic splittable RNG (splitmix64).

    Every component that needs randomness (workload generators, fault
    injection) derives its own stream by [split], so adding a new consumer
    never perturbs the values another consumer sees. *)

type t = { seed : int; mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { seed; state = Int64.of_int seed }

let seed t = t.seed

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let s = next_int64 t in
  { seed = Int64.to_int s land max_int; state = s }

(** Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int";
  let v = Int64.to_int (next_int64 t) land max_int in
  v mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

(** Uniform float in [0, 1). *)
let float t =
  let v = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float v /. 9007199254740992.0 (* 2^53 *)

(** Float in [lo, hi). *)
let float_range t lo hi = lo +. (float t *. (hi -. lo))

(** Exponentially distributed float with the given [mean]. *)
let exponential t ~mean =
  let u = float t in
  -.mean *. log (1.0 -. u)

(** Lognormal with parameters [mu] and [sigma] of the underlying normal. *)
let lognormal t ~mu ~sigma =
  (* Box-Muller *)
  let u1 = max 1e-12 (float t) and u2 = float t in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  exp (mu +. (sigma *. z))

(** Zipf-ish pick in [0, n): rank-biased choice used for hot/cold file
    selection in workloads. [theta] in (0,1); higher = more skewed. *)
let zipf t ~n ~theta =
  if n <= 0 then invalid_arg "Rng.zipf";
  let u = float t in
  let r = int_of_float (float_of_int n *. (u ** (1.0 /. (1.0 -. theta)))) in
  if r >= n then n - 1 else r

(** Fisher-Yates shuffle (in place). *)
let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
