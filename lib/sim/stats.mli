(** Named counters, latency accumulators, and log-bucketed histograms used
    across the kernel, device, and workloads for utilisation and
    per-operation statistics. *)

module Counter : sig
  type t

  val create : string -> t
  val incr : ?by:int -> t -> unit
  val add64 : t -> int64 -> unit
  val get : t -> int64
  val get_int : t -> int
  val reset : t -> unit
  val name : t -> string
end

module Latency : sig
  type t

  val create : string -> t
  val record : t -> int64 -> unit
  val count : t -> int
  val total : t -> int64
  val mean : t -> int64
  val min_ns : t -> int64
  val max_ns : t -> int64
  val name : t -> string
  val reset : t -> unit
end

(** Log-bucketed duration histogram (HDR-style): exact below 32 ns, 16
    sub-buckets per power of two above, so any quantile is reported within
    ~6% relative error. O(1), allocation-free recording. *)
module Histogram : sig
  type t

  val create : string -> t

  val record : t -> int64 -> unit
  (** Record a duration in virtual nanoseconds (negative clamps to 0). *)

  val count : t -> int
  val total : t -> int64
  val mean : t -> int64
  val min_ns : t -> int64
  val max_ns : t -> int64

  val percentile : t -> float -> int64
  (** [percentile t q] for [q] in [0,100]; p0 equals [min_ns], p100 equals
      [max_ns], and the result is monotone nondecreasing in [q]. 0 when
      empty. *)

  val iter_buckets : t -> (lo:int64 -> hi:int64 -> count:int -> unit) -> unit
  (** Visit non-empty buckets in increasing value order, with the inclusive
      value range each covers. *)

  val name : t -> string
  val reset : t -> unit
end

type t
(** A registry of counters, latency trackers, and histograms, addressed by
    name. *)

val create : unit -> t

val counter : t -> string -> Counter.t
(** Find-or-create. *)

val latency : t -> string -> Latency.t
val histogram : t -> string -> Histogram.t

val iter_counters : t -> (string -> Counter.t -> unit) -> unit
(** In name order (deterministic output). *)

val iter_latencies : t -> (string -> Latency.t -> unit) -> unit
val iter_histograms : t -> (string -> Histogram.t -> unit) -> unit

val reset : t -> unit
