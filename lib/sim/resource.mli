(** A k-server resource with FIFO admission, used to model CPU cores and
    device channels: at most [capacity] fibers are inside at once, the rest
    queue in order. *)

type t

val create : ?name:string -> int -> t
(** [create capacity] — capacity must be >= 1. *)

val acquire : t -> unit
val release : t -> unit

val use : t -> int64 -> unit
(** Occupy one server for a duration of virtual time. *)

val busy_sleep : t -> int64 -> unit
(** Hold an already-acquired server for a duration, counting it busy —
    [use] split into [acquire]; [busy_sleep]; [release] so callers can
    attribute the queueing wait and the service time separately. *)

val in_use : t -> int
val capacity : t -> int
val queued : t -> int

val busy_ns : t -> int64
(** Total occupied server-time, for utilisation accounting. *)

val admissions : t -> int

val utilisation : t -> elapsed:int64 -> float
(** Fraction of server-time occupied over [elapsed]. *)
