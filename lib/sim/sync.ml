(** Virtual-time synchronisation primitives.

    These mirror the kernel primitives the paper's file systems use: sleeping
    mutexes (xv6 sleeplocks / kernel semaphores), condition variables,
    counting semaphores, and reader-writer locks. All queues are FIFO with
    direct handoff, which keeps the simulation deterministic and fair. *)

module Mutex = struct
  type t = {
    name : string;
    mutable locked : bool;
    waiters : (unit -> unit) Queue.t;
    mutable contended : int; (* stat: how many lock() calls had to wait *)
    mutable acquisitions : int;
    mutable wait_ns : int64; (* total virtual time lock() calls spent blocked *)
    mutable max_wait_ns : int64; (* longest single blocked wait *)
  }

  let create ?(name = "mutex") () =
    {
      name;
      locked = false;
      waiters = Queue.create ();
      contended = 0;
      acquisitions = 0;
      wait_ns = 0L;
      max_wait_ns = 0L;
    }

  let lock m =
    m.acquisitions <- m.acquisitions + 1;
    if not m.locked then m.locked <- true
    else begin
      m.contended <- m.contended + 1;
      Engine.note_blocked ("mutex " ^ m.name);
      let t0 = Engine.now_here () in
      Engine.suspend (fun waker -> Queue.push waker m.waiters);
      Engine.clear_blocked ();
      (* Ownership is handed to us directly by [unlock]; [locked] stays true. *)
      let dt = Int64.sub (Engine.now_here ()) t0 in
      m.wait_ns <- Int64.add m.wait_ns dt;
      if Int64.compare dt m.max_wait_ns > 0 then m.max_wait_ns <- dt;
      Engine.note_lock_wait m.name dt
    end

  let try_lock m =
    if m.locked then false
    else begin
      m.locked <- true;
      m.acquisitions <- m.acquisitions + 1;
      true
    end

  let unlock m =
    if not m.locked then invalid_arg ("Mutex.unlock while unlocked: " ^ m.name);
    match Queue.take_opt m.waiters with
    | Some waker -> waker () (* direct handoff: stays locked *)
    | None -> m.locked <- false

  let locked m = m.locked
  let contended m = m.contended
  let acquisitions m = m.acquisitions
  let wait_ns m = m.wait_ns
  let max_wait_ns m = m.max_wait_ns

  let with_lock m f =
    lock m;
    match f () with
    | v ->
        unlock m;
        v
    | exception exn ->
        unlock m;
        raise exn
end

module Condvar = struct
  type t = { waiters : (unit -> unit) Queue.t }

  let create () = { waiters = Queue.create () }

  (** Atomically release [m], wait for a signal, then re-acquire [m]. *)
  let wait t m =
    Engine.note_blocked "condvar";
    Engine.suspend (fun waker ->
        Queue.push waker t.waiters;
        Mutex.unlock m);
    Engine.clear_blocked ();
    Mutex.lock m

  let signal t =
    match Queue.take_opt t.waiters with Some w -> w () | None -> ()

  let broadcast t =
    let rec drain () =
      match Queue.take_opt t.waiters with
      | Some w ->
          w ();
          drain ()
      | None -> ()
    in
    drain ()

  let waiting t = Queue.length t.waiters
end

module Semaphore = struct
  type t = { mutable count : int; waiters : (unit -> unit) Queue.t }

  let create n =
    if n < 0 then invalid_arg "Semaphore.create";
    { count = n; waiters = Queue.create () }

  let acquire t =
    if t.count > 0 then t.count <- t.count - 1
    else begin
      Engine.note_blocked "semaphore";
      Engine.suspend (fun waker -> Queue.push waker t.waiters);
      Engine.clear_blocked ()
    end

  let try_acquire t =
    if t.count > 0 then begin
      t.count <- t.count - 1;
      true
    end
    else false

  let release t =
    match Queue.take_opt t.waiters with
    | Some w -> w () (* handoff: count stays the same *)
    | None -> t.count <- t.count + 1

  let available t = t.count
end

module Rwlock = struct
  type waiter = Reader of (unit -> unit) | Writer of (unit -> unit)

  type t = {
    name : string;
    mutable readers : int;
    mutable writer : bool;
    waiters : waiter Queue.t;
  }

  let create ?(name = "rwlock") () =
    { name; readers = 0; writer = false; waiters = Queue.create () }

  (* Wake as many queued waiters as can now run: either one writer, or a
     maximal prefix of readers. FIFO prevents writer starvation. *)
  let rec wake_next t =
    match Queue.peek_opt t.waiters with
    | Some (Writer w) when t.readers = 0 && not t.writer ->
        ignore (Queue.pop t.waiters);
        t.writer <- true;
        w ()
    | Some (Reader w) when not t.writer ->
        ignore (Queue.pop t.waiters);
        t.readers <- t.readers + 1;
        w ();
        wake_next t
    | _ -> ()

  let read_lock t =
    if (not t.writer) && Queue.is_empty t.waiters then
      t.readers <- t.readers + 1
    else begin
      Engine.note_blocked ("rwlock(r) " ^ t.name);
      let t0 = Engine.now_here () in
      Engine.suspend (fun waker -> Queue.push (Reader waker) t.waiters);
      Engine.clear_blocked ();
      Engine.note_lock_wait t.name (Int64.sub (Engine.now_here ()) t0)
    end

  let read_unlock t =
    if t.readers <= 0 then invalid_arg "Rwlock.read_unlock";
    t.readers <- t.readers - 1;
    if t.readers = 0 then wake_next t

  let write_lock t =
    if t.readers = 0 && (not t.writer) && Queue.is_empty t.waiters then
      t.writer <- true
    else begin
      Engine.note_blocked ("rwlock(w) " ^ t.name);
      let t0 = Engine.now_here () in
      Engine.suspend (fun waker -> Queue.push (Writer waker) t.waiters);
      Engine.clear_blocked ();
      Engine.note_lock_wait t.name (Int64.sub (Engine.now_here ()) t0)
    end

  let write_unlock t =
    if not t.writer then invalid_arg "Rwlock.write_unlock";
    t.writer <- false;
    wake_next t

  let with_read t f =
    read_lock t;
    match f () with
    | v ->
        read_unlock t;
        v
    | exception e ->
        read_unlock t;
        raise e

  let with_write t f =
    write_lock t;
    match f () with
    | v ->
        write_unlock t;
        v
    | exception e ->
        write_unlock t;
        raise e
end

(** A one-shot event that fibers can wait on; used for request completion. *)
module Ivar = struct
  type 'a state = Empty of (unit -> unit) Queue.t | Full of 'a

  type 'a t = { mutable state : 'a state }

  let create () = { state = Empty (Queue.create ()) }

  let fill t v =
    match t.state with
    | Full _ -> invalid_arg "Ivar.fill: already filled"
    | Empty q ->
        t.state <- Full v;
        Queue.iter (fun w -> w ()) q

  let is_full t = match t.state with Full _ -> true | Empty _ -> false

  let read t =
    match t.state with
    | Full v -> v
    | Empty q -> (
        Engine.note_blocked "ivar";
        Engine.suspend (fun waker -> Queue.push waker q);
        Engine.clear_blocked ();
        match t.state with
        | Full v -> v
        | Empty _ -> assert false)
end

(** Bounded FIFO channel between fibers (FUSE request queue, daemon loop). *)
module Channel = struct
  type 'a t = {
    capacity : int;
    items : 'a Queue.t;
    senders : (unit -> unit) Queue.t;
    receivers : (unit -> unit) Queue.t;
    mutable closed : bool;
  }

  exception Closed

  let create ?(capacity = max_int) () =
    if capacity < 1 then invalid_arg "Channel.create";
    {
      capacity;
      items = Queue.create ();
      senders = Queue.create ();
      receivers = Queue.create ();
      closed = false;
    }

  let send t v =
    if t.closed then raise Closed;
    if Queue.length t.items >= t.capacity then
      Engine.suspend (fun w -> Queue.push w t.senders);
    if t.closed then raise Closed;
    Queue.push v t.items;
    match Queue.take_opt t.receivers with Some w -> w () | None -> ()

  let recv t =
    if Queue.is_empty t.items then begin
      if t.closed then raise Closed;
      Engine.suspend (fun w -> Queue.push w t.receivers)
    end;
    match Queue.take_opt t.items with
    | Some v ->
        (match Queue.take_opt t.senders with Some w -> w () | None -> ());
        v
    | None -> if t.closed then raise Closed else invalid_arg "Channel.recv"

  (* [recv] can raise [Closed] in two ways: immediately (empty + already
     closed) or after blocking, when [close] wakes the receiver with no item
     to hand over. Both mean the same thing here: no more values. *)
  let recv_opt t = match recv t with v -> Some v | exception Closed -> None

  let close t =
    t.closed <- true;
    Queue.iter (fun w -> w ()) t.receivers;
    Queue.clear t.receivers;
    Queue.iter (fun w -> w ()) t.senders;
    Queue.clear t.senders

  let length t = Queue.length t.items
end
