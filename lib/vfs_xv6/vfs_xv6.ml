(** The "C-kernel" baseline: the xv6 file system written directly against
    the kernel VFS layer, the way the paper's 1862-line C baseline was
    (§6.2).

    It shares the on-disk format with the Bento version (Xv6fs.Layout) but
    is an independent implementation with the characteristics the paper
    ascribes to the hand-written C version:

    - it registers plain VFS ops and touches kernel objects directly — no
      capability layer, no scoped buffer wrappers (buffers are released by
      explicit calls on every path, the style whose missed-cleanup bugs
      Table 1 counts);
    - writeback uses [writepage]: one page per call ([wb_batch = 1]);
    - log commits issue one synchronous device command per block — it was
      "just written for this evaluation" and lacks the batched/async
      submission BentoFS inherited from the FUSE kernel module.

    The transaction model matches the Bento version: metadata operations
    commit eagerly at end_op; data writeback joins lazy group commits
    triggered by log pressure or fsync. *)

module L = Xv6fs.Layout

type 'a res = ('a, Kernel.Errno.t) result

let ( let* ) (r : 'a res) f : 'b res = match r with Ok v -> f v | Error _ as e -> e

(* In-core inode. *)
type inode = {
  inum : int;
  ilock : Sim.Sync.Mutex.t;
  mutable valid : bool;
  mutable ftype : L.ftype;
  mutable nlink : int;
  mutable size : int;
  mutable addrs : int array;
  mutable refcount : int;
  mutable nopen : int;
}

type log_state = {
  log_lock : Sim.Sync.Mutex.t;
  log_cond : Sim.Sync.Condvar.t;
  header_block : int;
  log_start : int;
  log_capacity : int;
  mutable outstanding : int;
  mutable committing : bool;
  mutable staged_order : int list;
  staged : (int, unit) Hashtbl.t;
  mutable eager_dirty : bool;
  mutable commits : int;
}

type fs = {
  machine : Kernel.Machine.t;
  bc : Kernel.Bcache.t;
  sb : L.superblock;
  log : log_state;
  icache : (int, inode) Hashtbl.t;
  icache_lock : Sim.Sync.Mutex.t;
  alloc_lock : Sim.Sync.Mutex.t;
  rename_lock : Sim.Sync.Mutex.t;
  mutable balloc_rotor : int;
  mutable ialloc_rotor : int;
  mutable free_blocks : int;
  mutable free_inodes : int;
}

let bsize = L.block_size
let max_op_blocks = 16
let write_chunk_blocks = 8

let cpu fs ns = Kernel.Machine.cpu_work fs.machine ns
let costs fs = Kernel.Machine.cost fs.machine

(* ------------------------------------------------------------------ *)
(* Log: same protocol as the Bento version, but every device write is a
   separate synchronous command (no batching, no async submission).     *)

let log_write fs buf =
  Sim.Sync.Mutex.lock fs.log.log_lock;
  if fs.log.outstanding < 1 then begin
    Sim.Sync.Mutex.unlock fs.log.log_lock;
    invalid_arg "vfs_xv6: log_write outside transaction"
  end;
  let blk = buf.Kernel.Bcache.block in
  cpu fs (costs fs).Kernel.Cost.log_copy_per_block;
  if Hashtbl.mem fs.log.staged blk then ()
  else begin
    if Hashtbl.length fs.log.staged >= fs.log.log_capacity then begin
      Sim.Sync.Mutex.unlock fs.log.log_lock;
      failwith "vfs_xv6: log overflow"
    end;
    Kernel.Bcache.bpin fs.bc buf;
    Hashtbl.replace fs.log.staged blk ();
    fs.log.staged_order <- blk :: fs.log.staged_order
  end;
  Sim.Sync.Mutex.unlock fs.log.log_lock

(* One synchronous bwrite per block: the C version's install/log paths. *)
let do_commit fs =
  let order = List.rev fs.log.staged_order in
  let n = List.length order in
  if n > 0 then begin
    Kernel.Machine.with_layer fs.machine "log" @@ fun () ->
    fs.log.commits <- fs.log.commits + 1;
    Kernel.Machine.incr fs.machine "log_commits";
    Kernel.Machine.incr ~by:n fs.machine "log_commit_blocks";
    let home_bufs = List.map (fun blk -> Kernel.Bcache.bread fs.bc blk) order in
    (* copy to log area, one write per block *)
    let datas = ref [] in
    List.iteri
      (fun i src ->
        let dst = Kernel.Bcache.getblk fs.bc (fs.log.log_start + i) in
        cpu fs (costs fs).Kernel.Cost.log_copy_per_block;
        Bytes.blit src.Kernel.Bcache.data 0 dst.Kernel.Bcache.data 0 bsize;
        Kernel.Bcache.bwrite fs.bc dst;
        datas := Bytes.copy dst.Kernel.Bcache.data :: !datas;
        Kernel.Bcache.brelse fs.bc dst)
      home_bufs;
    let checksum = L.checksum_blocks (List.rev !datas) in
    let hdr = Kernel.Bcache.getblk fs.bc fs.log.header_block in
    L.put_log_header hdr.Kernel.Bcache.data
      { L.n; checksum; targets = Array.of_list order };
    Kernel.Bcache.bwrite fs.bc hdr;
    Kernel.Bcache.brelse fs.bc hdr;
    Kernel.Bcache.flush fs.bc;
    (* install, one write per block *)
    List.iter
      (fun b ->
        Kernel.Bcache.bwrite fs.bc b;
        Kernel.Bcache.bunpin fs.bc b;
        Kernel.Bcache.brelse fs.bc b)
      home_bufs;
    Kernel.Bcache.flush fs.bc;
    let hdr = Kernel.Bcache.getblk fs.bc fs.log.header_block in
    L.put_log_header hdr.Kernel.Bcache.data
      { L.n = 0; checksum = 0L; targets = [||] };
    Kernel.Bcache.bwrite fs.bc hdr;
    Kernel.Bcache.brelse fs.bc hdr;
    Hashtbl.reset fs.log.staged;
    fs.log.staged_order <- [];
    fs.log.eager_dirty <- false
  end

let commit_locked fs =
  fs.log.committing <- true;
  Sim.Sync.Mutex.unlock fs.log.log_lock;
  do_commit fs;
  Sim.Sync.Mutex.lock fs.log.log_lock;
  fs.log.committing <- false;
  Sim.Sync.Condvar.broadcast fs.log.log_cond

let begin_op fs =
  Sim.Sync.Mutex.lock fs.log.log_lock;
  let rec wait () =
    if fs.log.committing then begin
      Sim.Sync.Condvar.wait fs.log.log_cond fs.log.log_lock;
      wait ()
    end
    else if
      Hashtbl.length fs.log.staged + ((fs.log.outstanding + 1) * max_op_blocks)
      > fs.log.log_capacity
    then
      if fs.log.outstanding = 0 then begin
        commit_locked fs;
        wait ()
      end
      else begin
        Sim.Sync.Condvar.wait fs.log.log_cond fs.log.log_lock;
        wait ()
      end
    else fs.log.outstanding <- fs.log.outstanding + 1
  in
  wait ();
  Sim.Sync.Mutex.unlock fs.log.log_lock

let end_op ?(eager = true) fs =
  Sim.Sync.Mutex.lock fs.log.log_lock;
  fs.log.outstanding <- fs.log.outstanding - 1;
  if eager && fs.log.staged_order <> [] then fs.log.eager_dirty <- true;
  if fs.log.outstanding = 0 && fs.log.eager_dirty && fs.log.staged_order <> []
  then commit_locked fs;
  Sim.Sync.Condvar.broadcast fs.log.log_cond;
  Sim.Sync.Mutex.unlock fs.log.log_lock

let with_op ?(eager = true) fs f =
  begin_op fs;
  match f () with
  | v ->
      end_op ~eager fs;
      v
  | exception exn ->
      end_op ~eager fs;
      raise exn

let log_force fs =
  Sim.Sync.Mutex.lock fs.log.log_lock;
  let rec wait () =
    if fs.log.committing || fs.log.outstanding > 0 then begin
      Sim.Sync.Condvar.wait fs.log.log_cond fs.log.log_lock;
      wait ()
    end
  in
  wait ();
  if fs.log.staged_order <> [] then begin
    commit_locked fs;
    Sim.Sync.Mutex.unlock fs.log.log_lock
  end
  else begin
    Sim.Sync.Mutex.unlock fs.log.log_lock;
    Kernel.Bcache.flush fs.bc
  end

let log_recover fs =
  let hdr = Kernel.Bcache.bread fs.bc fs.log.header_block in
  let h = L.get_log_header hdr.Kernel.Bcache.data in
  Kernel.Bcache.brelse fs.bc hdr;
  if h.L.n > 0 then begin
    let log_bufs =
      List.init h.L.n (fun i -> Kernel.Bcache.bread fs.bc (fs.log.log_start + i))
    in
    let checksum =
      L.checksum_blocks (List.map (fun b -> b.Kernel.Bcache.data) log_bufs)
    in
    if Int64.equal checksum h.L.checksum then begin
      List.iteri
        (fun i lb ->
          let home = Kernel.Bcache.getblk fs.bc h.L.targets.(i) in
          Bytes.blit lb.Kernel.Bcache.data 0 home.Kernel.Bcache.data 0 bsize;
          Kernel.Bcache.bwrite fs.bc home;
          Kernel.Bcache.brelse fs.bc home)
        log_bufs;
      Kernel.Bcache.flush fs.bc
    end;
    List.iter (fun b -> Kernel.Bcache.brelse fs.bc b) log_bufs;
    let hdr = Kernel.Bcache.getblk fs.bc fs.log.header_block in
    L.put_log_header hdr.Kernel.Bcache.data { L.n = 0; checksum = 0L; targets = [||] };
    Kernel.Bcache.bwrite fs.bc hdr;
    Kernel.Bcache.brelse fs.bc hdr;
    Kernel.Bcache.flush fs.bc
  end

(* ------------------------------------------------------------------ *)
(* Allocators.                                                          *)

let bitmap_get data bit =
  Char.code (Bytes.get data (bit / 8)) land (1 lsl (bit mod 8)) <> 0

let bitmap_set data bit v =
  let byte = Char.code (Bytes.get data (bit / 8)) in
  let mask = 1 lsl (bit mod 8) in
  Bytes.set data (bit / 8)
    (Char.chr (if v then byte lor mask else byte land lnot mask))

let balloc fs : int res =
  Sim.Sync.Mutex.lock fs.alloc_lock;
  let total = fs.sb.L.size in
  let bits = bsize * 8 in
  let rec scan tried b =
    if tried > total then begin
      Sim.Sync.Mutex.unlock fs.alloc_lock;
      Error Kernel.Errno.ENOSPC
    end
    else begin
      let b = if b >= total then fs.sb.L.datastart else b in
      let bmb = Kernel.Bcache.bread fs.bc (L.bblock fs.sb b) in
      let base = b / bits * bits in
      cpu fs (costs fs).Kernel.Cost.block_alloc;
      let rec find bit =
        if bit >= bits || base + bit >= total then None
        else if
          base + bit >= fs.sb.L.datastart
          && not (bitmap_get bmb.Kernel.Bcache.data bit)
        then Some (base + bit)
        else find (bit + 1)
      in
      match find (b - base) with
      | Some blk ->
          bitmap_set bmb.Kernel.Bcache.data (L.bbit blk) true;
          log_write fs bmb;
          Kernel.Bcache.brelse fs.bc bmb;
          fs.balloc_rotor <- blk + 1;
          fs.free_blocks <- fs.free_blocks - 1;
          Sim.Sync.Mutex.unlock fs.alloc_lock;
          (* zero it *)
          let zb = Kernel.Bcache.getblk fs.bc blk in
          Bytes.fill zb.Kernel.Bcache.data 0 bsize '\000';
          log_write fs zb;
          Kernel.Bcache.brelse fs.bc zb;
          Ok blk
      | None ->
          Kernel.Bcache.brelse fs.bc bmb;
          scan (tried + (bits - (b - base))) (base + bits)
    end
  in
  scan 0 (max fs.balloc_rotor fs.sb.L.datastart)

let bfree fs blk =
  Sim.Sync.Mutex.lock fs.alloc_lock;
  let bmb = Kernel.Bcache.bread fs.bc (L.bblock fs.sb blk) in
  if not (bitmap_get bmb.Kernel.Bcache.data (L.bbit blk)) then begin
    Kernel.Bcache.brelse fs.bc bmb;
    Sim.Sync.Mutex.unlock fs.alloc_lock;
    failwith "vfs_xv6: bfree of free block"
  end;
  bitmap_set bmb.Kernel.Bcache.data (L.bbit blk) false;
  log_write fs bmb;
  Kernel.Bcache.brelse fs.bc bmb;
  fs.free_blocks <- fs.free_blocks + 1;
  if blk < fs.balloc_rotor then fs.balloc_rotor <- blk;
  Sim.Sync.Mutex.unlock fs.alloc_lock

(* ------------------------------------------------------------------ *)
(* Inode cache.                                                         *)

let iget fs inum =
  Sim.Sync.Mutex.lock fs.icache_lock;
  let ip =
    match Hashtbl.find_opt fs.icache inum with
    | Some ip ->
        ip.refcount <- ip.refcount + 1;
        ip
    | None ->
        let ip =
          {
            inum;
            ilock = Sim.Sync.Mutex.create ();
            valid = false;
            ftype = L.F_free;
            nlink = 0;
            size = 0;
            addrs = Array.make (L.ndirect + 2) 0;
            refcount = 1;
            nopen = 0;
          }
        in
        Hashtbl.add fs.icache inum ip;
        ip
  in
  Sim.Sync.Mutex.unlock fs.icache_lock;
  ip

let ilock fs ip =
  Sim.Sync.Mutex.lock ip.ilock;
  if not ip.valid then begin
    let b = Kernel.Bcache.bread fs.bc (L.iblock fs.sb ip.inum) in
    (match L.get_dinode b.Kernel.Bcache.data ~slot:(L.islot ip.inum) with
    | Ok d ->
        ip.ftype <- d.L.ftype;
        ip.nlink <- d.L.nlink;
        ip.size <- d.L.size;
        ip.addrs <- Array.copy d.L.addrs
    | Error msg ->
        Kernel.Bcache.brelse fs.bc b;
        failwith ("vfs_xv6: corrupt inode: " ^ msg));
    Kernel.Bcache.brelse fs.bc b;
    ip.valid <- true
  end

let iunlock ip = Sim.Sync.Mutex.unlock ip.ilock

let iupdate fs ip =
  let b = Kernel.Bcache.bread fs.bc (L.iblock fs.sb ip.inum) in
  L.put_dinode b.Kernel.Bcache.data ~slot:(L.islot ip.inum)
    { L.ftype = ip.ftype; nlink = ip.nlink; size = ip.size; addrs = ip.addrs };
  log_write fs b;
  Kernel.Bcache.brelse fs.bc b

let ialloc fs ftype : inode res =
  Sim.Sync.Mutex.lock fs.alloc_lock;
  let n = fs.sb.L.ninodes in
  let rec scan tried inum =
    if tried >= n then begin
      Sim.Sync.Mutex.unlock fs.alloc_lock;
      Error Kernel.Errno.ENOSPC
    end
    else begin
      let inum = if inum >= n then 1 else inum in
      let b = Kernel.Bcache.bread fs.bc (L.iblock fs.sb inum) in
      cpu fs (costs fs).Kernel.Cost.block_alloc;
      let free =
        match L.get_dinode b.Kernel.Bcache.data ~slot:(L.islot inum) with
        | Ok d -> d.L.ftype = L.F_free
        | Error _ -> false
      in
      if free then begin
        L.put_dinode b.Kernel.Bcache.data ~slot:(L.islot inum)
          { L.zero_dinode with L.ftype };
        log_write fs b;
        Kernel.Bcache.brelse fs.bc b;
        fs.ialloc_rotor <- inum + 1;
        fs.free_inodes <- fs.free_inodes - 1;
        Sim.Sync.Mutex.unlock fs.alloc_lock;
        let ip = iget fs inum in
        Sim.Sync.Mutex.lock ip.ilock;
        ip.ftype <- ftype;
        ip.nlink <- 0;
        ip.size <- 0;
        ip.addrs <- Array.make (L.ndirect + 2) 0;
        ip.valid <- true;
        Sim.Sync.Mutex.unlock ip.ilock;
        Ok ip
      end
      else begin
        Kernel.Bcache.brelse fs.bc b;
        scan (tried + 1) (inum + 1)
      end
    end
  in
  scan 0 (max 1 fs.ialloc_rotor)

(* ------------------------------------------------------------------ *)
(* bmap / readi / writei.                                               *)

let nind = L.nindirect

let indirect_entry fs blk idx ~alloc : int res =
  let b = Kernel.Bcache.bread fs.bc blk in
  let v = Util.Bytesio.get_u32 b.Kernel.Bcache.data (idx * 4) in
  if v <> 0 || not alloc then begin
    Kernel.Bcache.brelse fs.bc b;
    Ok v
  end
  else
    match balloc fs with
    | Error e ->
        Kernel.Bcache.brelse fs.bc b;
        Error e
    | Ok child ->
        Util.Bytesio.set_u32 b.Kernel.Bcache.data (idx * 4) child;
        log_write fs b;
        Kernel.Bcache.brelse fs.bc b;
        Ok child

let bmap fs ip bn ~alloc : int res =
  if bn < 0 || bn >= L.max_file_blocks then Error Kernel.Errno.EFBIG
  else if bn < L.ndirect then begin
    if ip.addrs.(bn) <> 0 || not alloc then Ok ip.addrs.(bn)
    else
      let* blk = balloc fs in
      ip.addrs.(bn) <- blk;
      Ok blk
  end
  else begin
    let bn = bn - L.ndirect in
    if bn < nind then begin
      let* ind =
        if ip.addrs.(L.ndirect) <> 0 then Ok ip.addrs.(L.ndirect)
        else if not alloc then Ok 0
        else
          let* blk = balloc fs in
          ip.addrs.(L.ndirect) <- blk;
          Ok blk
      in
      if ind = 0 then Ok 0 else indirect_entry fs ind bn ~alloc
    end
    else begin
      let bn = bn - nind in
      let* dind =
        if ip.addrs.(L.ndirect + 1) <> 0 then Ok ip.addrs.(L.ndirect + 1)
        else if not alloc then Ok 0
        else
          let* blk = balloc fs in
          ip.addrs.(L.ndirect + 1) <- blk;
          Ok blk
      in
      if dind = 0 then Ok 0
      else
        let* ind = indirect_entry fs dind (bn / nind) ~alloc in
        if ind = 0 then Ok 0 else indirect_entry fs ind (bn mod nind) ~alloc
    end
  end

let readi fs ip ~off ~len : Bytes.t res =
  let len = max 0 (min len (ip.size - off)) in
  if off < 0 then Error Kernel.Errno.EINVAL
  else if len = 0 then Ok Bytes.empty
  else begin
    let out = Bytes.create len in
    let rec go done_ =
      if done_ >= len then Ok out
      else begin
        let abs = off + done_ in
        let bn = abs / bsize in
        let boff = abs mod bsize in
        let n = min (bsize - boff) (len - done_) in
        let* blk = bmap fs ip bn ~alloc:false in
        if blk = 0 then begin
          Bytes.fill out done_ n '\000';
          go (done_ + n)
        end
        else begin
          let b = Kernel.Bcache.bread fs.bc blk in
          Bytes.blit b.Kernel.Bcache.data boff out done_ n;
          Kernel.Bcache.brelse fs.bc b;
          go (done_ + n)
        end
      end
    in
    go 0
  end

(* Write inside the current transaction. *)
let writei_tx fs ip ~off data ~from ~len : unit res =
  let rec go done_ =
    if done_ >= len then Ok ()
    else begin
      let abs = off + done_ in
      let bn = abs / bsize in
      let boff = abs mod bsize in
      let n = min (bsize - boff) (len - done_) in
      let* blk = bmap fs ip bn ~alloc:true in
      let b =
        if n = bsize then Kernel.Bcache.getblk fs.bc blk
        else Kernel.Bcache.bread fs.bc blk
      in
      Bytes.blit data (from + done_) b.Kernel.Bcache.data boff n;
      log_write fs b;
      Kernel.Bcache.brelse fs.bc b;
      go (done_ + n)
    end
  in
  let* () = go 0 in
  if off + len > ip.size then ip.size <- off + len;
  iupdate fs ip;
  Ok ()

let writei fs ip ~off data : int res =
  let len = Bytes.length data in
  if off < 0 then Error Kernel.Errno.EINVAL
  else if off + len > L.max_file_size then Error Kernel.Errno.EFBIG
  else if len = 0 then Ok 0
  else begin
    let chunk_bytes = write_chunk_blocks * bsize in
    let rec go done_ =
      if done_ >= len then Ok len
      else begin
        let abs = off + done_ in
        let room = chunk_bytes - (abs mod bsize) in
        let n = min room (len - done_) in
        let r =
          with_op ~eager:false fs (fun () ->
              ilock fs ip;
              let r = writei_tx fs ip ~off:abs data ~from:done_ ~len:n in
              iunlock ip;
              r)
        in
        match r with Ok () -> go (done_ + n) | Error _ as e -> e
      end
    in
    go 0
  end

(* ------------------------------------------------------------------ *)
(* Truncate and iput.                                                   *)

let free_round_blocks = 2048

(* Free mapped data blocks with file index >= keep under indirect block
   [blk] covering file indexes [base, ...); bounded by [budget]. *)
let rec free_indirect_tail fs blk ~level ~base ~keep ~budget : int =
  if blk = 0 || budget <= 0 then 0
  else begin
    let child_span = if level = 2 then nind else 1 in
    let b = Kernel.Bcache.bread fs.bc blk in
    let data = b.Kernel.Bcache.data in
    let freed = ref 0 in
    let changed = ref false in
    let idx = ref (nind - 1) in
    while !idx >= 0 && !freed < budget do
      let child_base = base + (!idx * child_span) in
      let child = Util.Bytesio.get_u32 data (!idx * 4) in
      (if child <> 0 && child_base + child_span > keep then
         if level = 1 then begin
           if child_base >= keep then begin
             bfree fs child;
             Util.Bytesio.set_u32 data (!idx * 4) 0;
             changed := true;
             incr freed
           end
         end
         else begin
           let sub =
             free_indirect_tail fs child ~level:1 ~base:child_base ~keep
               ~budget:(budget - !freed)
           in
           freed := !freed + sub;
           if !freed < budget && child_base >= keep then begin
             bfree fs child;
             Util.Bytesio.set_u32 data (!idx * 4) 0;
             changed := true
           end
         end);
      if !freed < budget then decr idx
    done;
    if !changed then log_write fs b;
    Kernel.Bcache.brelse fs.bc b;
    !freed
  end

let itrunc_round fs ip ~keep : bool =
  let budget = ref free_round_blocks in
  let dind_base = L.ndirect + nind in
  if
    !budget > 0
    && ip.addrs.(L.ndirect + 1) <> 0
    && keep < dind_base + (nind * nind)
  then begin
    let freed =
      free_indirect_tail fs ip.addrs.(L.ndirect + 1) ~level:2 ~base:dind_base
        ~keep ~budget:!budget
    in
    budget := !budget - freed;
    if !budget > 0 && keep <= dind_base then begin
      bfree fs ip.addrs.(L.ndirect + 1);
      ip.addrs.(L.ndirect + 1) <- 0
    end
  end;
  if !budget > 0 && ip.addrs.(L.ndirect) <> 0 && keep < L.ndirect + nind
  then begin
    let freed =
      free_indirect_tail fs ip.addrs.(L.ndirect) ~level:1 ~base:L.ndirect ~keep
        ~budget:!budget
    in
    budget := !budget - freed;
    if !budget > 0 && keep <= L.ndirect then begin
      bfree fs ip.addrs.(L.ndirect);
      ip.addrs.(L.ndirect) <- 0
    end
  end;
  if !budget > 0 then
    for i = L.ndirect - 1 downto max 0 keep do
      if ip.addrs.(i) <> 0 then begin
        bfree fs ip.addrs.(i);
        ip.addrs.(i) <- 0
      end
    done;
  iupdate fs ip;
  !budget > 0

let itrunc_to fs ip ~keep =
  let rec loop () =
    let finished =
      with_op fs (fun () ->
          ilock fs ip;
          let fin = itrunc_round fs ip ~keep in
          iunlock ip;
          fin)
    in
    if not finished then loop ()
  in
  loop ()

let itrunc_all fs ip =
  itrunc_to fs ip ~keep:0;
  with_op fs (fun () ->
      ilock fs ip;
      ip.size <- 0;
      iupdate fs ip;
      iunlock ip)

let iput fs ip =
  Sim.Sync.Mutex.lock fs.icache_lock;
  ip.refcount <- ip.refcount - 1;
  let free_now =
    ip.refcount = 0 && ip.valid && ip.nlink = 0 && ip.ftype <> L.F_free
  in
  if free_now then ip.refcount <- 1
  else if ip.refcount = 0 then Hashtbl.remove fs.icache ip.inum;
  Sim.Sync.Mutex.unlock fs.icache_lock;
  if free_now then begin
    itrunc_all fs ip;
    with_op fs (fun () ->
        ilock fs ip;
        ip.ftype <- L.F_free;
        ip.size <- 0;
        iupdate fs ip;
        iunlock ip);
    Sim.Sync.Mutex.lock fs.alloc_lock;
    fs.free_inodes <- fs.free_inodes + 1;
    if ip.inum < fs.ialloc_rotor then fs.ialloc_rotor <- ip.inum;
    Sim.Sync.Mutex.unlock fs.alloc_lock;
    Sim.Sync.Mutex.lock fs.icache_lock;
    ip.refcount <- ip.refcount - 1;
    if ip.refcount = 0 then Hashtbl.remove fs.icache ip.inum;
    Sim.Sync.Mutex.unlock fs.icache_lock
  end

(* ------------------------------------------------------------------ *)
(* Directories.                                                         *)

let dirent_count ip = ip.size / L.dirent_size

let dirlookup fs dp name : (int * int) option res =
  if dp.ftype <> L.F_dir then Error Kernel.Errno.ENOTDIR
  else begin
    let nblocks_ = (dp.size + bsize - 1) / bsize in
    let rec scan_block bi =
      if bi >= nblocks_ then Ok None
      else begin
        let* blk = bmap fs dp bi ~alloc:false in
        if blk = 0 then scan_block (bi + 1)
        else begin
          let b = Kernel.Bcache.bread fs.bc blk in
          let data = b.Kernel.Bcache.data in
          let slots =
            min L.dirents_per_block (dirent_count dp - (bi * L.dirents_per_block))
          in
          cpu fs
            (Int64.mul (Int64.of_int (max 1 slots)) (costs fs).Kernel.Cost.dirent_scan);
          let rec find s =
            if s >= slots then None
            else
              match L.get_dirent data ~slot:s with
              | Some (ino, n) when String.equal n name ->
                  Some (ino, (bi * L.dirents_per_block) + s)
              | _ -> find (s + 1)
          in
          let hit = find 0 in
          Kernel.Bcache.brelse fs.bc b;
          match hit with Some h -> Ok (Some h) | None -> scan_block (bi + 1)
        end
      end
    in
    scan_block 0
  end

let dirlink fs dp ~name ~ino : unit res =
  if String.length name > L.max_name then Error Kernel.Errno.ENAMETOOLONG
  else if String.length name = 0 then Error Kernel.Errno.EINVAL
  else begin
    let total = dirent_count dp in
    let rec find_free s =
      if s >= total then Ok total
      else begin
        let bi = s / L.dirents_per_block in
        let* blk = bmap fs dp bi ~alloc:false in
        if blk = 0 then Ok s
        else begin
          let b = Kernel.Bcache.bread fs.bc blk in
          let hi = min L.dirents_per_block (total - (bi * L.dirents_per_block)) in
          cpu fs
            (Int64.mul (Int64.of_int (max 1 hi)) (costs fs).Kernel.Cost.dirent_scan);
          let rec f s' =
            if s' >= hi then None
            else if L.get_dirent b.Kernel.Bcache.data ~slot:s' = None then
              Some ((bi * L.dirents_per_block) + s')
            else f (s' + 1)
          in
          let hit = f (s mod L.dirents_per_block) in
          Kernel.Bcache.brelse fs.bc b;
          match hit with
          | Some slot -> Ok slot
          | None -> find_free ((bi + 1) * L.dirents_per_block)
        end
      end
    in
    let* slot = find_free 0 in
    let ent = Bytes.make L.dirent_size '\000' in
    L.put_dirent ent ~slot:0 ~ino ~name;
    writei_tx fs dp ~off:(slot * L.dirent_size) ~from:0 ~len:L.dirent_size ent
  end

let dirunlink fs dp ~slot : unit res =
  let zero = Bytes.make L.dirent_size '\000' in
  writei_tx fs dp ~off:(slot * L.dirent_size) ~from:0 ~len:L.dirent_size zero

let dir_is_empty fs ip : bool res =
  let total = dirent_count ip in
  let rec scan s =
    if s >= total then Ok true
    else begin
      let bi = s / L.dirents_per_block in
      let* blk = bmap fs ip bi ~alloc:false in
      if blk = 0 then scan ((bi + 1) * L.dirents_per_block)
      else begin
        let b = Kernel.Bcache.bread fs.bc blk in
        let hi = min L.dirents_per_block (total - (bi * L.dirents_per_block)) in
        let rec f s' =
          if s' >= hi then None
          else
            match L.get_dirent b.Kernel.Bcache.data ~slot:s' with
            | Some (_, n) when n <> "." && n <> ".." -> Some n
            | _ -> f (s' + 1)
        in
        let occ = f (s mod L.dirents_per_block) in
        Kernel.Bcache.brelse fs.bc b;
        match occ with Some _ -> Ok false | None -> scan ((bi + 1) * L.dirents_per_block)
      end
    end
  in
  scan 0

(* ------------------------------------------------------------------ *)
(* VFS operations.                                                      *)

let kind_of_ftype = function
  | L.F_dir -> Kernel.Vfs.Dir
  | L.F_file -> Kernel.Vfs.Reg
  | L.F_symlink -> Kernel.Vfs.Symlink
  | L.F_free -> Kernel.Vfs.Reg

let stat_of ip =
  {
    Kernel.Vfs.st_ino = ip.inum;
    st_kind = kind_of_ftype ip.ftype;
    st_size = ip.size;
    st_nlink = ip.nlink;
  }

let stat_of_inum fs inum : Kernel.Vfs.stat res =
  if inum < 1 || inum >= fs.sb.L.ninodes then Error Kernel.Errno.ESTALE
  else begin
    let ip = iget fs inum in
    ilock fs ip;
    let r = if ip.ftype = L.F_free then Error Kernel.Errno.ESTALE else Ok (stat_of ip) in
    iunlock ip;
    iput fs ip;
    r
  end

let create_entry fs ~dir name ftype : Kernel.Vfs.stat res =
  if String.length name > L.max_name then Error Kernel.Errno.ENAMETOOLONG
  else
    with_op fs (fun () ->
        let dp = iget fs dir in
        ilock fs dp;
        let finish r =
          iunlock dp;
          iput fs dp;
          r
        in
        if dp.ftype <> L.F_dir then finish (Error Kernel.Errno.ENOTDIR)
        else if dp.nlink = 0 then finish (Error Kernel.Errno.ENOENT)
        else
          match dirlookup fs dp name with
          | Error _ as e -> finish e
          | Ok (Some _) -> finish (Error Kernel.Errno.EEXIST)
          | Ok None -> (
              match ialloc fs ftype with
              | Error _ as e -> finish e
              | Ok ip ->
                  ilock fs ip;
                  ip.nlink <- 1;
                  iupdate fs ip;
                  let r =
                    if ftype = L.F_dir then begin
                      let* () = dirlink fs ip ~name:"." ~ino:ip.inum in
                      let* () = dirlink fs ip ~name:".." ~ino:dp.inum in
                      ip.nlink <- 2;
                      iupdate fs ip;
                      dp.nlink <- dp.nlink + 1;
                      iupdate fs dp;
                      Ok ()
                    end
                    else Ok ()
                  in
                  let r =
                    match r with
                    | Error _ as e -> e
                    | Ok () -> dirlink fs dp ~name ~ino:ip.inum
                  in
                  let out =
                    match r with
                    | Error _ as e ->
                        ip.nlink <- 0;
                        iupdate fs ip;
                        e
                    | Ok () -> Ok (stat_of ip)
                  in
                  iunlock ip;
                  iput fs ip;
                  finish out))

let vfs_lookup fs ~dir name : Kernel.Vfs.stat res =
  let dp = iget fs dir in
  ilock fs dp;
  let r = dirlookup fs dp name in
  iunlock dp;
  iput fs dp;
  match r with
  | Error _ as e -> e
  | Ok None -> Error Kernel.Errno.ENOENT
  | Ok (Some (ino, _)) -> stat_of_inum fs ino

let vfs_unlink fs ~dir name : unit res =
  if name = "." || name = ".." then Error Kernel.Errno.EINVAL
  else begin
    let victim = ref None in
    let r =
      with_op fs (fun () ->
          let dp = iget fs dir in
          ilock fs dp;
          let finish r =
            iunlock dp;
            iput fs dp;
            r
          in
          if dp.ftype <> L.F_dir then finish (Error Kernel.Errno.ENOTDIR)
          else
            match dirlookup fs dp name with
            | Error _ as e -> finish e
            | Ok None -> finish (Error Kernel.Errno.ENOENT)
            | Ok (Some (ino, slot)) -> (
                let ip = iget fs ino in
                ilock fs ip;
                if ip.ftype = L.F_dir then begin
                  iunlock ip;
                  iput fs ip;
                  finish (Error Kernel.Errno.EISDIR)
                end
                else
                  match dirunlink fs dp ~slot with
                  | Error _ as e ->
                      iunlock ip;
                      iput fs ip;
                      finish e
                  | Ok () ->
                      ip.nlink <- ip.nlink - 1;
                      iupdate fs ip;
                      let blocks_est = (ip.size + bsize - 1) / bsize in
                      if
                        ip.nlink = 0 && ip.nopen = 0 && ip.refcount = 1
                        && blocks_est <= 64
                      then begin
                        ignore (itrunc_round fs ip ~keep:0);
                        ip.ftype <- L.F_free;
                        ip.size <- 0;
                        iupdate fs ip;
                        Sim.Sync.Mutex.lock fs.alloc_lock;
                        fs.free_inodes <- fs.free_inodes + 1;
                        if ip.inum < fs.ialloc_rotor then
                          fs.ialloc_rotor <- ip.inum;
                        Sim.Sync.Mutex.unlock fs.alloc_lock
                      end;
                      iunlock ip;
                      victim := Some ip;
                      finish (Ok ())))
    in
    (match !victim with Some ip -> iput fs ip | None -> ());
    r
  end

let vfs_rmdir fs ~dir name : unit res =
  if name = "." || name = ".." then Error Kernel.Errno.EINVAL
  else begin
    let victim = ref None in
    let r =
      with_op fs (fun () ->
          let dp = iget fs dir in
          ilock fs dp;
          let finish r =
            iunlock dp;
            iput fs dp;
            r
          in
          if dp.ftype <> L.F_dir then finish (Error Kernel.Errno.ENOTDIR)
          else
            match dirlookup fs dp name with
            | Error _ as e -> finish e
            | Ok None -> finish (Error Kernel.Errno.ENOENT)
            | Ok (Some (ino, slot)) -> (
                let ip = iget fs ino in
                ilock fs ip;
                if ip.ftype <> L.F_dir then begin
                  iunlock ip;
                  iput fs ip;
                  finish (Error Kernel.Errno.ENOTDIR)
                end
                else
                  match dir_is_empty fs ip with
                  | Error _ as e ->
                      iunlock ip;
                      iput fs ip;
                      finish e
                  | Ok false ->
                      iunlock ip;
                      iput fs ip;
                      finish (Error Kernel.Errno.ENOTEMPTY)
                  | Ok true -> (
                      match dirunlink fs dp ~slot with
                      | Error _ as e ->
                          iunlock ip;
                          iput fs ip;
                          finish e
                      | Ok () ->
                          dp.nlink <- dp.nlink - 1;
                          iupdate fs dp;
                          ip.nlink <- 0;
                          iupdate fs ip;
                          iunlock ip;
                          victim := Some ip;
                          finish (Ok ()))))
    in
    (match !victim with Some ip -> iput fs ip | None -> ());
    r
  end

let vfs_link fs ~ino ~dir name : Kernel.Vfs.stat res =
  with_op fs (fun () ->
      let ip = iget fs ino in
      ilock fs ip;
      if ip.ftype = L.F_dir then begin
        iunlock ip;
        iput fs ip;
        Error Kernel.Errno.EPERM
      end
      else begin
        ip.nlink <- ip.nlink + 1;
        iupdate fs ip;
        let a = stat_of ip in
        iunlock ip;
        let dp = iget fs dir in
        ilock fs dp;
        let r =
          if dp.ftype <> L.F_dir then Error Kernel.Errno.ENOTDIR
          else
            match dirlookup fs dp name with
            | Error _ as e -> e
            | Ok (Some _) -> Error Kernel.Errno.EEXIST
            | Ok None -> dirlink fs dp ~name ~ino
        in
        iunlock dp;
        iput fs dp;
        match r with
        | Ok () ->
            iput fs ip;
            Ok a
        | Error _ as e ->
            ilock fs ip;
            ip.nlink <- ip.nlink - 1;
            iupdate fs ip;
            iunlock ip;
            iput fs ip;
            e
      end)

let vfs_rename fs ~olddir ~oldname ~newdir ~newname : unit res =
  if oldname = "." || oldname = ".." || newname = "." || newname = ".." then
    Error Kernel.Errno.EINVAL
  else if String.length newname > L.max_name then Error Kernel.Errno.ENAMETOOLONG
  else begin
    Sim.Sync.Mutex.lock fs.rename_lock;
    let victim = ref None in
    let r =
      with_op fs (fun () ->
          let dp_old = iget fs olddir in
          let dp_new = if newdir = olddir then dp_old else iget fs newdir in
          (if dp_old == dp_new then ilock fs dp_old
           else if dp_old.inum < dp_new.inum then begin
             ilock fs dp_old;
             ilock fs dp_new
           end
           else begin
             ilock fs dp_new;
             ilock fs dp_old
           end);
          let finish r =
            (if dp_old == dp_new then iunlock dp_old
             else begin
               iunlock dp_old;
               iunlock dp_new
             end);
            iput fs dp_old;
            if dp_new != dp_old then iput fs dp_new;
            r
          in
          if dp_old.ftype <> L.F_dir || dp_new.ftype <> L.F_dir then
            finish (Error Kernel.Errno.ENOTDIR)
          else
            match dirlookup fs dp_old oldname with
            | Error _ as e -> finish e
            | Ok None -> finish (Error Kernel.Errno.ENOENT)
            | Ok (Some (src_ino, src_slot)) -> (
                if src_ino = dp_new.inum then finish (Error Kernel.Errno.EINVAL)
                else
                  match dirlookup fs dp_new newname with
                  | Error _ as e -> finish e
                  | Ok existing -> (
                      let src = iget fs src_ino in
                      ilock fs src;
                      let src_is_dir = src.ftype = L.F_dir in
                      let replace_r =
                        match existing with
                        | None -> Ok None
                        | Some (dst_ino, dst_slot) ->
                            if dst_ino = src_ino then Ok None
                            else begin
                              let dst = iget fs dst_ino in
                              ilock fs dst;
                              let dst_is_dir = dst.ftype = L.F_dir in
                              let ok =
                                if src_is_dir && not dst_is_dir then
                                  Error Kernel.Errno.ENOTDIR
                                else if (not src_is_dir) && dst_is_dir then
                                  Error Kernel.Errno.EISDIR
                                else if dst_is_dir then
                                  match dir_is_empty fs dst with
                                  | Error _ as e -> e
                                  | Ok false -> Error Kernel.Errno.ENOTEMPTY
                                  | Ok true -> Ok ()
                                else Ok ()
                              in
                              match ok with
                              | Error e ->
                                  iunlock dst;
                                  iput fs dst;
                                  Error e
                              | Ok () -> (
                                  match dirunlink fs dp_new ~slot:dst_slot with
                                  | Error _ as e ->
                                      iunlock dst;
                                      iput fs dst;
                                      e
                                  | Ok () ->
                                      if dst_is_dir then begin
                                        dst.nlink <- 0;
                                        dp_new.nlink <- dp_new.nlink - 1;
                                        iupdate fs dp_new
                                      end
                                      else dst.nlink <- dst.nlink - 1;
                                      iupdate fs dst;
                                      iunlock dst;
                                      Ok (Some dst))
                            end
                      in
                      match replace_r with
                      | Error e ->
                          iunlock src;
                          iput fs src;
                          finish (Error e)
                      | Ok dst_victim -> (
                          victim := dst_victim;
                          let r =
                            let* () = dirlink fs dp_new ~name:newname ~ino:src_ino in
                            let* () = dirunlink fs dp_old ~slot:src_slot in
                            if src_is_dir && dp_old.inum <> dp_new.inum then begin
                              match dirlookup fs src ".." with
                              | Error _ as e -> e
                              | Ok (Some (_, dotdot_slot)) ->
                                  let* () = dirunlink fs src ~slot:dotdot_slot in
                                  let* () = dirlink fs src ~name:".." ~ino:dp_new.inum in
                                  dp_old.nlink <- dp_old.nlink - 1;
                                  iupdate fs dp_old;
                                  dp_new.nlink <- dp_new.nlink + 1;
                                  iupdate fs dp_new;
                                  Ok ()
                              | Ok None -> Ok ()
                            end
                            else Ok ()
                          in
                          iunlock src;
                          iput fs src;
                          finish r))))
    in
    (match !victim with Some ip -> iput fs ip | None -> ());
    Sim.Sync.Mutex.unlock fs.rename_lock;
    r
  end

let vfs_readdir fs ino : Kernel.Vfs.dirent list res =
  let dp = iget fs ino in
  ilock fs dp;
  let r =
    if dp.ftype <> L.F_dir then Error Kernel.Errno.ENOTDIR
    else begin
      let total = dirent_count dp in
      let out = ref [] in
      let rec scan s =
        if s >= total then Ok (List.rev !out)
        else begin
          let bi = s / L.dirents_per_block in
          let* blk = bmap fs dp bi ~alloc:false in
          (if blk <> 0 then begin
             let b = Kernel.Bcache.bread fs.bc blk in
             let hi = min L.dirents_per_block (total - (bi * L.dirents_per_block)) in
             for s' = 0 to hi - 1 do
               match L.get_dirent b.Kernel.Bcache.data ~slot:s' with
               | Some (ino', n) ->
                   out := { Kernel.Vfs.d_name = n; d_ino = ino'; d_kind = Kernel.Vfs.Reg } :: !out
               | None -> ()
             done;
             Kernel.Bcache.brelse fs.bc b
           end);
          scan ((bi + 1) * L.dirents_per_block)
        end
      in
      scan 0
    end
  in
  iunlock dp;
  iput fs dp;
  match r with
  | Error _ as e -> e
  | Ok entries ->
      Ok
        (List.map
           (fun d ->
             if d.Kernel.Vfs.d_name = "." || d.Kernel.Vfs.d_name = ".." then
               { d with Kernel.Vfs.d_kind = Kernel.Vfs.Dir }
             else
               match stat_of_inum fs d.Kernel.Vfs.d_ino with
               | Ok st -> { d with Kernel.Vfs.d_kind = st.Kernel.Vfs.st_kind }
               | Error _ -> d)
           entries)

let vfs_truncate fs ~ino size : unit res =
  if size < 0 then Error Kernel.Errno.EINVAL
  else if size > L.max_file_size then Error Kernel.Errno.EFBIG
  else begin
    let ip = iget fs ino in
    ilock fs ip;
    let old = ip.size in
    iunlock ip;
    let r =
      if size = 0 then begin
        itrunc_all fs ip;
        Ok ()
      end
      else if size < old then begin
        let keep = (size + bsize - 1) / bsize in
        itrunc_to fs ip ~keep;
        with_op fs (fun () ->
            ilock fs ip;
            let r =
              if size mod bsize <> 0 then
                match bmap fs ip (size / bsize) ~alloc:false with
                | Ok blk when blk <> 0 ->
                    let b = Kernel.Bcache.bread fs.bc blk in
                    Bytes.fill b.Kernel.Bcache.data (size mod bsize)
                      (bsize - (size mod bsize)) '\000';
                    log_write fs b;
                    Kernel.Bcache.brelse fs.bc b;
                    Ok ()
                | Ok _ -> Ok ()
                | Error _ as e -> e
              else Ok ()
            in
            ip.size <- size;
            iupdate fs ip;
            iunlock ip;
            r)
      end
      else
        with_op fs (fun () ->
            ilock fs ip;
            ip.size <- size;
            iupdate fs ip;
            iunlock ip;
            Ok ())
    in
    iput fs ip;
    r
  end

(* ------------------------------------------------------------------ *)
(* mkfs / mount.                                                        *)

let default_nlog = 126

let compute_layout machine =
  let size = Device.Ssd.nblocks (Kernel.Machine.disk machine) in
  let ninodes = min 262144 (max 4096 (size / 32)) in
  L.compute ~size ~ninodes ~nlog:default_nlog

(** Format the device (identical on-disk format to the Bento version — the
    two baselines can mount each other's images, and the tests verify it). *)
let mkfs machine : unit res =
  let bc = Kernel.Bcache.create machine in
  let sb = compute_layout machine in
  let put blk f =
    let b = Kernel.Bcache.getblk bc blk in
    f b.Kernel.Bcache.data;
    Kernel.Bcache.bwrite bc b;
    Kernel.Bcache.brelse bc b
  in
  put 1 (fun data ->
      Bytes.fill data 0 bsize '\000';
      L.put_superblock data sb);
  put sb.L.logstart (fun data ->
      L.put_log_header data { L.n = 0; checksum = 0L; targets = [||] });
  let bits = bsize * 8 in
  let nbitmap = (sb.L.size + bits - 1) / bits in
  for i = 0 to nbitmap - 1 do
    put (sb.L.bmapstart + i) (fun data ->
        Bytes.fill data 0 bsize '\000';
        let base = i * bits in
        for bit = 0 to bits - 1 do
          let blk = base + bit in
          if blk < sb.L.datastart && blk < sb.L.size then bitmap_set data bit true
        done)
  done;
  let ninodeblocks = (sb.L.ninodes + L.inodes_per_block - 1) / L.inodes_per_block in
  for i = 0 to ninodeblocks - 1 do
    put (sb.L.inodestart + i) (fun data -> Bytes.fill data 0 bsize '\000')
  done;
  let root_block = sb.L.datastart in
  let b = Kernel.Bcache.bread bc (L.bblock sb root_block) in
  bitmap_set b.Kernel.Bcache.data (L.bbit root_block) true;
  Kernel.Bcache.bwrite bc b;
  Kernel.Bcache.brelse bc b;
  put root_block (fun data ->
      Bytes.fill data 0 bsize '\000';
      L.put_dirent data ~slot:0 ~ino:L.root_ino ~name:".";
      L.put_dirent data ~slot:1 ~ino:L.root_ino ~name:"..");
  let b = Kernel.Bcache.bread bc (L.iblock sb L.root_ino) in
  let addrs = Array.make (L.ndirect + 2) 0 in
  addrs.(0) <- root_block;
  L.put_dinode b.Kernel.Bcache.data ~slot:(L.islot L.root_ino)
    { L.ftype = L.F_dir; nlink = 2; size = 2 * L.dirent_size; addrs };
  Kernel.Bcache.bwrite bc b;
  Kernel.Bcache.brelse bc b;
  Kernel.Bcache.flush bc;
  Ok ()

let count_free fs =
  let bits = bsize * 8 in
  let nbitmap = (fs.sb.L.size + bits - 1) / bits in
  let free = ref 0 in
  for i = 0 to nbitmap - 1 do
    let b = Kernel.Bcache.bread fs.bc (fs.sb.L.bmapstart + i) in
    let base = i * bits in
    for bit = 0 to bits - 1 do
      let blk = base + bit in
      if blk >= fs.sb.L.datastart && blk < fs.sb.L.size then
        if not (bitmap_get b.Kernel.Bcache.data bit) then incr free
    done;
    Kernel.Bcache.brelse fs.bc b
  done;
  fs.free_blocks <- !free;
  let ifree = ref 0 in
  let ninodeblocks = (fs.sb.L.ninodes + L.inodes_per_block - 1) / L.inodes_per_block in
  for i = 0 to ninodeblocks - 1 do
    let b = Kernel.Bcache.bread fs.bc (fs.sb.L.inodestart + i) in
    for slot = 0 to L.inodes_per_block - 1 do
      let inum = (i * L.inodes_per_block) + slot in
      if inum >= 1 && inum < fs.sb.L.ninodes then
        match L.get_dinode b.Kernel.Bcache.data ~slot with
        | Ok d -> if d.L.ftype = L.F_free then incr ifree
        | Error _ -> ()
    done;
    Kernel.Bcache.brelse fs.bc b
  done;
  fs.free_inodes <- !ifree

(** Mount directly on the VFS layer; returns the VFS instance. *)
let mount ?dirty_limit ?background machine : (Kernel.Vfs.t, Kernel.Errno.t) result =
  let bc = Kernel.Bcache.create machine in
  let b = Kernel.Bcache.bread bc 1 in
  let sb_r = L.get_superblock b.Kernel.Bcache.data in
  Kernel.Bcache.brelse bc b;
  match sb_r with
  | Error _ -> Error Kernel.Errno.EINVAL
  | Ok sb ->
      let fs =
        {
          machine;
          bc;
          sb;
          log =
            {
              log_lock = Sim.Sync.Mutex.create ~name:"c-log" ();
              log_cond = Sim.Sync.Condvar.create ();
              header_block = sb.L.logstart;
              log_start = sb.L.logstart + 1;
              log_capacity = min (sb.L.nlog - 1) L.log_max_entries;
              outstanding = 0;
              committing = false;
              staged_order = [];
              staged = Hashtbl.create 64;
              eager_dirty = false;
              commits = 0;
            };
          icache = Hashtbl.create 1024;
          icache_lock = Sim.Sync.Mutex.create ();
          alloc_lock = Sim.Sync.Mutex.create ();
          rename_lock = Sim.Sync.Mutex.create ();
          balloc_rotor = sb.L.datastart;
          ialloc_rotor = 1;
          free_blocks = 0;
          free_inodes = 0;
        }
      in
      log_recover fs;
      count_free fs;
      let ops : Kernel.Vfs.fs_ops =
        Kernel.Vfs.profiled_ops machine "fs"
        {
          Kernel.Vfs.fs_name = "xv6-c";
          root_ino = L.root_ino;
          lookup = (fun ~dir name -> vfs_lookup fs ~dir name);
          getattr = (fun ino -> stat_of_inum fs ino);
          create = (fun ~dir name -> create_entry fs ~dir name L.F_file);
          mkdir = (fun ~dir name -> create_entry fs ~dir name L.F_dir);
          unlink = (fun ~dir name -> vfs_unlink fs ~dir name);
          rmdir = (fun ~dir name -> vfs_rmdir fs ~dir name);
          rename =
            (fun ~olddir ~oldname ~newdir ~newname ->
              vfs_rename fs ~olddir ~oldname ~newdir ~newname);
          link = (fun ~ino ~dir name -> vfs_link fs ~ino ~dir name);
          symlink =
            (fun ~dir name ~target ->
              if String.length target > bsize then
                Error Kernel.Errno.ENAMETOOLONG
              else
                match create_entry fs ~dir name L.F_symlink with
                | Error _ as e -> e
                | Ok st ->
                    let ip = iget fs st.Kernel.Vfs.st_ino in
                    let r =
                      with_op fs (fun () ->
                          ilock fs ip;
                          let r =
                            writei_tx fs ip ~off:0
                              (Bytes.of_string target)
                              ~from:0
                              ~len:(String.length target)
                          in
                          iunlock ip;
                          r)
                    in
                    iput fs ip;
                    (match r with
                    | Ok () ->
                        Ok { st with Kernel.Vfs.st_size = String.length target }
                    | Error _ as e -> e));
          readlink =
            (fun ~ino ->
              let ip = iget fs ino in
              ilock fs ip;
              let r =
                if ip.ftype <> L.F_symlink then Error Kernel.Errno.EINVAL
                else
                  match readi fs ip ~off:0 ~len:ip.size with
                  | Ok b -> Ok (Bytes.to_string b)
                  | Error _ as e -> e
              in
              iunlock ip;
              iput fs ip;
              r);
          readdir = (fun ino -> vfs_readdir fs ino);
          readdir_filter =
            (fun ino ~prog ->
              Kernel.Pushdown.filter_dir
                (Kernel.Pushdown.registry machine)
                ~name:prog
                ~readdir:(fun () -> vfs_readdir fs ino)
                ~getattr:(fun ino -> stat_of_inum fs ino));
          bmap =
            (fun ~ino ~fbn ->
              let ip = iget fs ino in
              ilock fs ip;
              let r =
                if ip.ftype = L.F_free then Error Kernel.Errno.ESTALE
                else bmap fs ip fbn ~alloc:false
              in
              iunlock ip;
              iput fs ip;
              r);
          readpage =
            (fun ~ino ~index ->
              let ip = iget fs ino in
              ilock fs ip;
              let r = readi fs ip ~off:(index * bsize) ~len:bsize in
              iunlock ip;
              iput fs ip;
              match r with
              | Error _ as e -> e
              | Ok data ->
                  if Bytes.length data = bsize then Ok data
                  else begin
                    let page = Bytes.make bsize '\000' in
                    Bytes.blit data 0 page 0 (Bytes.length data);
                    Ok page
                  end);
          readahead =
            (fun ~ino ~start ~count ->
              (* The C baseline has no bulk read hook, so the readahead
                 window is filled with per-page serial reads — the read
                 side of its writepage-vs-writepages handicap. *)
              let ip = iget fs ino in
              ilock fs ip;
              let rec go i acc =
                if i >= count then Ok (Array.of_list (List.rev acc))
                else
                  match readi fs ip ~off:((start + i) * bsize) ~len:bsize with
                  | Error _ as e -> e
                  | Ok data ->
                      let page =
                        if Bytes.length data = bsize then data
                        else begin
                          let p = Bytes.make bsize '\000' in
                          Bytes.blit data 0 p 0 (Bytes.length data);
                          p
                        end
                      in
                      go (i + 1) (page :: acc)
              in
              let r = go 0 [] in
              iunlock ip;
              iput fs ip;
              r);
          write_pages =
            (fun ~ino ~isize pages ->
              (* wb_batch = 1: called one page at a time (writepage) *)
              match Array.length pages with
              | 0 -> Ok ()
              | _ ->
                  let index, data = pages.(0) in
                  let off = index * bsize in
                  let len = min bsize (max 0 (isize - off)) in
                  if len = 0 then Ok ()
                  else begin
                    let ip = iget fs ino in
                    let r = writei fs ip ~off (Bytes.sub data 0 len) in
                    iput fs ip;
                    match r with Ok _ -> Ok () | Error _ as e -> e
                  end);
          truncate = (fun ~ino size -> vfs_truncate fs ~ino size);
          fsync =
            (fun ~ino:_ ->
              log_force fs;
              Ok ());
          sync_fs =
            (fun () ->
              log_force fs;
              Ok ());
          iopen =
            (fun ~ino ->
              let ip = iget fs ino in
              if not ip.valid then begin
                ilock fs ip;
                iunlock ip
              end;
              if ip.ftype = L.F_free then begin
                iput fs ip;
                Error Kernel.Errno.ESTALE
              end
              else begin
                ip.nopen <- ip.nopen + 1;
                Ok ()
              end);
          irelease =
            (fun ~ino ->
              match Hashtbl.find_opt fs.icache ino with
              | None -> ()
              | Some ip ->
                  if ip.nopen > 0 then begin
                    ip.nopen <- ip.nopen - 1;
                    iput fs ip
                  end);
          statfs =
            (fun () ->
              {
                Kernel.Vfs.f_blocks = fs.sb.L.nblocks;
                f_bfree = fs.free_blocks;
                f_files = fs.sb.L.ninodes;
                f_ffree = fs.free_inodes;
              });
          wb_batch = 1;
          max_file_size = L.max_file_size;
        }
      in
      (* Pushdown walks read through the same buffer cache the fs uses,
         from below the syscall layer. *)
      Kernel.Pushdown.set_backend
        (Kernel.Pushdown.registry machine)
        ~label:"bcache"
        (fun blk ->
          let b = Kernel.Bcache.bread bc blk in
          let d = Bytes.copy b.Kernel.Bcache.data in
          Kernel.Bcache.brelse bc b;
          d);
      Ok (Kernel.Vfs.mount ?dirty_limit ?background machine ops)

(** Unmount: flush everything. *)
let unmount vfs = Kernel.Vfs.unmount vfs
