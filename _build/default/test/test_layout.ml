(** Property tests of the on-disk serialisation layers (xv6 + ext4 + byte
    accessors). *)

let tc = Alcotest.test_case

let gen_name =
  QCheck.Gen.(
    map
      (fun cs -> String.concat "" (List.map (String.make 1) cs))
      (list_size (int_range 1 Xv6fs.Layout.max_name) (char_range 'a' 'z')))

let prop_bytesio_u64 =
  QCheck.Test.make ~count:300 ~name:"bytesio u64 roundtrip"
    QCheck.(int_bound max_int)
    (fun v ->
      let b = Bytes.create 16 in
      Util.Bytesio.set_int_as_u64 b 4 v;
      Util.Bytesio.get_int64_as_int b 4 = v)

let prop_bytesio_string =
  QCheck.Test.make ~count:300 ~name:"bytesio fixed string roundtrip"
    (QCheck.make gen_name)
    (fun s ->
      let b = Bytes.make 64 '\xff' in
      Util.Bytesio.set_string b ~off:2 ~width:60 s;
      Util.Bytesio.get_string b ~off:2 ~width:60 = s)

let gen_dinode =
  QCheck.Gen.(
    map
      (fun ((ftype, nlink), (size, addrs)) ->
        {
          Xv6fs.Layout.ftype =
            (match ftype with
            | 0 -> Xv6fs.Layout.F_dir
            | 1 -> Xv6fs.Layout.F_file
            | _ -> Xv6fs.Layout.F_symlink);
          nlink;
          size;
          addrs = Array.of_list addrs;
        })
      (pair
         (pair (int_range 0 2) (int_range 0 1000))
         (pair (int_range 0 Xv6fs.Layout.max_file_size)
            (list_repeat (Xv6fs.Layout.ndirect + 2) (int_range 0 0xFFFFFF)))))

let prop_dinode_roundtrip =
  QCheck.Test.make ~count:300 ~name:"xv6 dinode put/get roundtrip"
    (QCheck.make gen_dinode)
    (fun d ->
      let block = Bytes.make Xv6fs.Layout.block_size '\000' in
      let slot = 7 in
      Xv6fs.Layout.put_dinode block ~slot d;
      match Xv6fs.Layout.get_dinode block ~slot with
      | Ok d' ->
          d'.Xv6fs.Layout.ftype = d.Xv6fs.Layout.ftype
          && d'.Xv6fs.Layout.nlink = d.Xv6fs.Layout.nlink
          && d'.Xv6fs.Layout.size = d.Xv6fs.Layout.size
          && d'.Xv6fs.Layout.addrs = d.Xv6fs.Layout.addrs
      | Error _ -> false)

let prop_dirent_roundtrip =
  QCheck.Test.make ~count:300 ~name:"xv6 dirent put/get roundtrip"
    QCheck.(pair (make gen_name) (int_range 1 1_000_000))
    (fun (name, ino) ->
      let block = Bytes.make Xv6fs.Layout.block_size '\000' in
      Xv6fs.Layout.put_dirent block ~slot:3 ~ino ~name;
      Xv6fs.Layout.get_dirent block ~slot:3 = Some (ino, name)
      && Xv6fs.Layout.get_dirent block ~slot:2 = None)

let prop_superblock_roundtrip =
  QCheck.Test.make ~count:200 ~name:"xv6 superblock roundtrip"
    QCheck.(pair (int_range 4096 (1 lsl 24)) (int_range 64 200_000))
    (fun (size, ninodes) ->
      let sb = Xv6fs.Layout.compute ~size ~ninodes ~nlog:126 in
      let b = Bytes.make Xv6fs.Layout.block_size '\000' in
      Xv6fs.Layout.put_superblock b sb;
      Xv6fs.Layout.get_superblock b = Ok sb)

let prop_log_header_roundtrip =
  QCheck.Test.make ~count:200 ~name:"xv6 log header roundtrip"
    QCheck.(list_of_size (QCheck.Gen.int_range 0 120) (int_range 1 100_000))
    (fun targets ->
      let h =
        {
          Xv6fs.Layout.n = List.length targets;
          checksum = 0x1234_5678_9ABCL;
          targets = Array.of_list targets;
        }
      in
      let b = Bytes.make Xv6fs.Layout.block_size '\000' in
      Xv6fs.Layout.put_log_header b h;
      let h' = Xv6fs.Layout.get_log_header b in
      h'.Xv6fs.Layout.n = h.Xv6fs.Layout.n
      && h'.Xv6fs.Layout.targets = h.Xv6fs.Layout.targets
      && Int64.equal h'.Xv6fs.Layout.checksum h.Xv6fs.Layout.checksum)

let test_layout_geometry () =
  let sb = Xv6fs.Layout.compute ~size:65536 ~ninodes:4096 ~nlog:126 in
  (* regions must not overlap and must cover the device in order *)
  Alcotest.(check bool) "log after sb" true (sb.Xv6fs.Layout.logstart = 2);
  Alcotest.(check bool) "inodes after log" true
    (sb.Xv6fs.Layout.inodestart = sb.Xv6fs.Layout.logstart + sb.Xv6fs.Layout.nlog);
  Alcotest.(check bool) "bitmap after inodes" true
    (sb.Xv6fs.Layout.bmapstart > sb.Xv6fs.Layout.inodestart);
  Alcotest.(check bool) "data after bitmap" true
    (sb.Xv6fs.Layout.datastart > sb.Xv6fs.Layout.bmapstart);
  Alcotest.(check int) "data block count" (65536 - sb.Xv6fs.Layout.datastart)
    sb.Xv6fs.Layout.nblocks;
  (* inode addressing stays inside the inode region *)
  let last = Xv6fs.Layout.iblock sb (sb.Xv6fs.Layout.ninodes - 1) in
  Alcotest.(check bool) "inode block bounded" true (last < sb.Xv6fs.Layout.bmapstart)

let prop_checksum_sensitive =
  QCheck.Test.make ~count:100 ~name:"log checksum detects missing block"
    QCheck.(int_range 2 20)
    (fun n ->
      let blocks =
        List.init n (fun i -> Bytes.make 4096 (Char.chr (33 + (i mod 90))))
      in
      let full = Xv6fs.Layout.checksum_blocks blocks in
      let torn = Xv6fs.Layout.checksum_blocks (List.tl blocks) in
      not (Int64.equal full torn))

let gen_extent =
  QCheck.Gen.(
    map
      (fun ((l, p), len) ->
        { Ext4sim.Layout4.e_logical = l; e_physical = p; e_len = len })
      (pair (pair (int_range 0 100000) (int_range 1 100000)) (int_range 1 32768)))

let prop_ext4_dinode_roundtrip =
  QCheck.Test.make ~count:300 ~name:"ext4 dinode roundtrip"
    (QCheck.make
       QCheck.Gen.(
         map
           (fun (((kind, nlink), size), (nextents, (inline, leaves))) ->
             {
               Ext4sim.Layout4.kind =
                 (match kind with
                 | 0 -> Ext4sim.Layout4.K_dir
                 | 1 -> Ext4sim.Layout4.K_file
                 | _ -> Ext4sim.Layout4.K_symlink);
               nlink;
               size;
               nextents;
               inline = Array.of_list inline;
               leaves = Array.of_list leaves;
             })
           (pair
              (pair (pair (int_range 0 2) (int_range 0 100)) (int_range 0 (1 lsl 30)))
              (pair (int_range 0 1000)
                 (pair
                    (list_repeat Ext4sim.Layout4.inline_extents gen_extent)
                    (list_repeat Ext4sim.Layout4.leaf_ptrs (int_range 0 100000)))))))
    (fun d ->
      let block = Bytes.make Ext4sim.Layout4.block_size '\000' in
      Ext4sim.Layout4.put_dinode block ~slot:3 d;
      match Ext4sim.Layout4.get_dinode block ~slot:3 with
      | Ok d' -> d' = d
      | Error _ -> false)

let prop_ext4_descriptor_roundtrip =
  QCheck.Test.make ~count:200 ~name:"ext4 journal descriptor roundtrip"
    QCheck.(pair (int_range 1 100000) (list_of_size (QCheck.Gen.int_range 0 500) (int_range 1 1_000_000)))
    (fun (sequence, targets) ->
      let b = Bytes.make Ext4sim.Layout4.block_size '\000' in
      Ext4sim.Layout4.put_descriptor b ~sequence ~count:(List.length targets)
        ~checksum:99L ~targets:(Array.of_list targets);
      match Ext4sim.Layout4.get_descriptor b with
      | Some (s, c, t) ->
          s = sequence && Int64.equal c 99L && t = Array.of_list targets
      | None -> false)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_bytesio_u64;
    QCheck_alcotest.to_alcotest prop_bytesio_string;
    QCheck_alcotest.to_alcotest prop_dinode_roundtrip;
    QCheck_alcotest.to_alcotest prop_dirent_roundtrip;
    QCheck_alcotest.to_alcotest prop_superblock_roundtrip;
    QCheck_alcotest.to_alcotest prop_log_header_roundtrip;
    QCheck_alcotest.to_alcotest prop_checksum_sensitive;
    QCheck_alcotest.to_alcotest prop_ext4_dinode_roundtrip;
    QCheck_alcotest.to_alcotest prop_ext4_descriptor_roundtrip;
    tc "layout geometry" `Quick test_layout_geometry;
  ]
