(** Symbolic-link tests across the three runtimes (Bento kernel, C-VFS,
    FUSE) and ext4. *)

open Helpers

let tc = Alcotest.test_case

let read_str os path = Bytes.to_string (ok (Kernel.Os.read_file os path))

let exercise os =
  ok (Kernel.Os.mkdir os "/real");
  ok (Kernel.Os.write_file os "/real/data" (bytes_of_string "through the link"));
  ok (Kernel.Os.symlink os "/real/data" "/lnk");
  (* follow on open/read *)
  Alcotest.(check string) "read through link" "through the link"
    (read_str os "/lnk");
  (* stat follows, lstat does not *)
  let st = ok (Kernel.Os.stat os "/lnk") in
  Alcotest.(check bool) "stat follows" true (st.Kernel.Vfs.st_kind = Kernel.Vfs.Reg);
  let lst = ok (Kernel.Os.lstat os "/lnk") in
  Alcotest.(check bool) "lstat sees the link" true
    (lst.Kernel.Vfs.st_kind = Kernel.Vfs.Symlink);
  Alcotest.(check string) "readlink" "/real/data" (ok (Kernel.Os.readlink os "/lnk"));
  (* writes through the link land in the target *)
  let fd = ok (Kernel.Os.open_ os "/lnk" Kernel.Os.wronly) in
  let _ = ok (Kernel.Os.pwrite os fd ~pos:0 (bytes_of_string "THROUGH")) in
  ok (Kernel.Os.close os fd);
  Alcotest.(check string) "target updated" "THROUGH the link"
    (read_str os "/real/data");
  (* symlink to a directory resolves mid-path *)
  ok (Kernel.Os.symlink os "/real" "/dirlnk");
  Alcotest.(check string) "dir link mid-path" "THROUGH the link"
    (read_str os "/dirlnk/data");
  (* dangling link: readable as a link, ENOENT through it *)
  ok (Kernel.Os.symlink os "/nowhere" "/dangling");
  check_res "dangling follow" Kernel.Errno.ENOENT (Kernel.Os.stat os "/dangling");
  Alcotest.(check string) "dangling readlink" "/nowhere"
    (ok (Kernel.Os.readlink os "/dangling"));
  (* unlink removes the link, not the target *)
  ok (Kernel.Os.unlink os "/lnk");
  Alcotest.(check string) "target survives" "THROUGH the link"
    (read_str os "/real/data");
  (* loops are detected *)
  ok (Kernel.Os.symlink os "/loopB" "/loopA");
  ok (Kernel.Os.symlink os "/loopA" "/loopB");
  check_res "ELOOP" Kernel.Errno.ELOOP (Kernel.Os.stat os "/loopA")

let test_bento () = with_xv6 (fun _m os _ _ -> exercise os)

let test_c_kernel () =
  in_sim (fun machine ->
      ok (Vfs_xv6.mkfs machine);
      let vfs = ok (Vfs_xv6.mount ~background:false machine) in
      exercise (Kernel.Os.create vfs);
      Vfs_xv6.unmount vfs)

let test_fuse () =
  in_sim (fun machine ->
      ok (Bento.Bentofs.mkfs machine xv6_maker);
      let vfs, h = ok (Bento_user.mount ~background:false machine xv6_maker) in
      exercise (Kernel.Os.create vfs);
      Bento_user.unmount vfs h)

let test_ext4 () =
  in_sim (fun machine ->
      ok (Ext4sim.Ext4.mkfs machine);
      let vfs, h = ok (Ext4sim.Ext4.mount ~background:false machine) in
      exercise (Kernel.Os.create vfs);
      Ext4sim.Ext4.unmount vfs h)

let test_symlink_persists () =
  in_sim (fun machine ->
      ok (Bento.Bentofs.mkfs machine xv6_maker);
      let vfs, h = ok (Bento.Bentofs.mount ~background:false machine xv6_maker) in
      let os = Kernel.Os.create vfs in
      ok (Kernel.Os.write_file os "/t" (bytes_of_string "x"));
      ok (Kernel.Os.symlink os "/t" "/l");
      Bento.Bentofs.unmount vfs h;
      let vfs, h = ok (Bento.Bentofs.mount ~background:false machine xv6_maker) in
      let os = Kernel.Os.create vfs in
      Alcotest.(check string) "link survives remount" "/t"
        (ok (Kernel.Os.readlink os "/l"));
      Alcotest.(check string) "follows after remount" "x"
        (Bytes.to_string (ok (Kernel.Os.read_file os "/l")));
      Bento.Bentofs.unmount vfs h)

let suite =
  [
    tc "bento xv6fs" `Quick test_bento;
    tc "c-kernel xv6" `Quick test_c_kernel;
    tc "fuse" `Quick test_fuse;
    tc "ext4" `Quick test_ext4;
    tc "persists across remount" `Quick test_symlink_persists;
  ]
