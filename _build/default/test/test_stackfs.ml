(** Tests of composable file systems (§3.4 / challenge 6): layers compose
    by functor application over the file-operations API, mount like any
    Bento fs, and carry their state through online upgrades. *)

open Helpers

let tc = Alcotest.test_case

module Key = struct
  let key = "bento-secret"
end

module Xor_xv6 = Bento.Stackfs.Xor (Key) (Xv6fs.Fs.Make)

let xor_maker : (module Bento.Fs_api.FS_MAKER) = (module Xor_xv6)

let test_xor_roundtrip () =
  in_sim (fun machine ->
      ok (Bento.Bentofs.mkfs machine xor_maker);
      let vfs, h = ok (Bento.Bentofs.mount ~background:false machine xor_maker) in
      let os = Kernel.Os.create vfs in
      ok (Kernel.Os.mkdir os "/enc");
      let secret = "attack at dawn, via the file-operations API" in
      ok (Kernel.Os.write_file os "/enc/msg" (bytes_of_string secret));
      ok (Kernel.Os.sync os);
      Alcotest.(check string) "decrypts through the layer" secret
        (Bytes.to_string (ok (Kernel.Os.read_file os "/enc/msg")));
      Bento.Bentofs.unmount vfs h)

let test_xor_ciphertext_on_disk () =
  in_sim (fun machine ->
      ok (Bento.Bentofs.mkfs machine xor_maker);
      let vfs, h = ok (Bento.Bentofs.mount ~background:false machine xor_maker) in
      let os = Kernel.Os.create vfs in
      let secret = String.make 64 'S' in
      ok (Kernel.Os.write_file os "/f" (bytes_of_string secret));
      Bento.Bentofs.unmount vfs h;
      (* mount WITHOUT the layer: the bytes on disk must not be plaintext *)
      let vfs, h = ok (Bento.Bentofs.mount ~background:false machine xv6_maker) in
      let os = Kernel.Os.create vfs in
      let raw = ok (Kernel.Os.read_file os "/f") in
      Alcotest.(check int) "same length" 64 (Bytes.length raw);
      Alcotest.(check bool) "not plaintext on disk" false
        (Bytes.to_string raw = secret);
      Bento.Bentofs.unmount vfs h;
      (* and back with the layer: plaintext again *)
      let vfs, h = ok (Bento.Bentofs.mount ~background:false machine xor_maker) in
      let os = Kernel.Os.create vfs in
      Alcotest.(check string) "layer restores plaintext" secret
        (Bytes.to_string (ok (Kernel.Os.read_file os "/f")));
      Bento.Bentofs.unmount vfs h)

let test_layers_compose () =
  (* provenance over xor over xv6: three deep, still a normal mount *)
  let module Stack = Bento.Stackfs.Provenance (Xor_xv6) in
  let maker : (module Bento.Fs_api.FS_MAKER) = (module Stack) in
  in_sim (fun machine ->
      ok (Bento.Bentofs.mkfs machine maker);
      let vfs, h = ok (Bento.Bentofs.mount ~background:false machine maker) in
      let os = Kernel.Os.create vfs in
      Alcotest.(check string) "layer names stack" "prov+xor+xv6fs"
        (Bento.Bentofs.current_name h);
      ok (Kernel.Os.write_file os "/deep" (bytes_of_string "works"));
      Alcotest.(check string) "roundtrip through 3 layers" "works"
        (Bytes.to_string (ok (Kernel.Os.read_file os "/deep")));
      Bento.Bentofs.unmount vfs h)

let test_provenance_tracks_lineage () =
  (* use the functor directly so we can query lineage *)
  in_sim (fun machine ->
      let bc = Kernel.Bcache.create machine in
      let services = Bento.Bentoks.kernel_services machine bc in
      let module K = (val services) in
      let module P = Bento.Stackfs.Provenance (Xv6fs.Fs.Make) (K) in
      ok (P.mkfs ());
      let fs = ok (P.mount ()) in
      (* input file *)
      let input = ok (P.create fs ~dir:1 "input.csv") in
      let _ =
        ok (P.write fs ~ino:input.Bento.Fs_api.a_ino ~off:0 (bytes_of_string "1,2,3"))
      in
      (* open the input (a reader holds it), then derive an output *)
      ok (P.iopen fs ~ino:input.Bento.Fs_api.a_ino);
      let output = ok (P.create fs ~dir:1 "output.dat") in
      let _ =
        ok (P.write fs ~ino:output.Bento.Fs_api.a_ino ~off:0 (bytes_of_string "6"))
      in
      P.irelease fs ~ino:input.Bento.Fs_api.a_ino;
      Alcotest.(check (list int))
        "output derived from input"
        [ input.Bento.Fs_api.a_ino ]
        (P.derived_from fs ~ino:output.Bento.Fs_api.a_ino);
      (* lineage survives the §4.8 state transfer *)
      let st = P.extract_state fs in
      let fs2 = ok (P.mount ()) in
      P.restore_state fs2 st;
      Alcotest.(check (list int))
        "lineage transferred across upgrade"
        [ input.Bento.Fs_api.a_ino ]
        (P.derived_from fs2 ~ino:output.Bento.Fs_api.a_ino);
      P.destroy fs2)

let test_stack_runs_under_fuse_too () =
  (* the composed fs is still a functor over services: it mounts at user
     level unchanged *)
  in_sim (fun machine ->
      ok (Bento.Bentofs.mkfs machine xor_maker);
      let vfs, h = ok (Bento_user.mount ~background:false machine xor_maker) in
      let os = Kernel.Os.create vfs in
      ok (Kernel.Os.write_file os "/u" (bytes_of_string "stacked+fused"));
      Alcotest.(check string) "roundtrip" "stacked+fused"
        (Bytes.to_string (ok (Kernel.Os.read_file os "/u")));
      Bento_user.unmount vfs h)

let suite =
  [
    tc "xor layer roundtrip" `Quick test_xor_roundtrip;
    tc "ciphertext on disk" `Quick test_xor_ciphertext_on_disk;
    tc "three layers compose" `Quick test_layers_compose;
    tc "provenance lineage" `Quick test_provenance_tracks_lineage;
    tc "stack under FUSE" `Quick test_stack_runs_under_fuse_too;
  ]
