(** Online-upgrade tests (§4.8): swapping xv6fs v1 for v2 under live
    applications, preserving open files and transferred state. *)

open Helpers

let tc = Alcotest.test_case

let v2_maker : (module Bento.Fs_api.FS_MAKER) = (module Xv6fs.Xv6fs_v2.Make)

let test_basic_upgrade () =
  with_xv6 (fun _m os _vfs h ->
      ok (Kernel.Os.write_file os "/pre" (bytes_of_string "before upgrade"));
      Alcotest.(check int) "v1 mounted" 1 (Bento.Bentofs.current_version h);
      let report = Bento.Upgrade.upgrade h v2_maker in
      Alcotest.(check int) "v2 running" 2 (Bento.Bentofs.current_version h);
      Alcotest.(check int) "versions" 1 report.Bento.Upgrade.from_version;
      Alcotest.(check int) "to" 2 report.Bento.Upgrade.to_version;
      (* data written before the upgrade is still there, no remount *)
      Alcotest.(check string) "pre-upgrade data" "before upgrade"
        (Bytes.to_string (ok (Kernel.Os.read_file os "/pre")));
      (* and the new version works *)
      ok (Kernel.Os.write_file os "/post" (bytes_of_string "after"));
      Alcotest.(check string) "post-upgrade data" "after"
        (Bytes.to_string (ok (Kernel.Os.read_file os "/post"))))

let test_open_files_survive () =
  with_xv6 (fun _m os _vfs h ->
      let fd = ok (Kernel.Os.open_ os "/live" Kernel.Os.(creat rdwr)) in
      let _ = ok (Kernel.Os.write os fd (bytes_of_string "half")) in
      let report = Bento.Upgrade.upgrade h v2_maker in
      Alcotest.(check bool) "open inode transferred" true
        (report.Bento.Upgrade.transferred_open_inodes >= 1);
      (* keep using the same fd across the upgrade *)
      let _ = ok (Kernel.Os.write os fd (bytes_of_string "+half")) in
      ok (Kernel.Os.fsync os fd);
      ok (Kernel.Os.close os fd);
      Alcotest.(check string) "writes from both sides" "half+half"
        (Bytes.to_string (ok (Kernel.Os.read_file os "/live"))))

let test_upgrade_under_load () =
  with_xv6 (fun machine os _vfs h ->
      let stop = ref false in
      let failures = ref 0 in
      let writes = ref 0 in
      let done_ = Sim.Sync.Semaphore.create 0 in
      for w = 0 to 3 do
        Kernel.Machine.spawn machine (fun () ->
            let i = ref 0 in
            while not !stop do
              incr i;
              (match
                 Kernel.Os.write_file os
                   (Printf.sprintf "/w%d-%d" w (!i mod 50))
                   (bytes_of_string "load")
               with
              | Ok () -> incr writes
              | Error _ -> incr failures);
              Sim.Engine.sleep (Sim.Time.us 200)
            done;
            Sim.Sync.Semaphore.release done_)
      done;
      Sim.Engine.sleep (Sim.Time.ms 20);
      let report = Bento.Upgrade.upgrade h v2_maker in
      Sim.Engine.sleep (Sim.Time.ms 20);
      stop := true;
      for _ = 0 to 3 do
        Sim.Sync.Semaphore.acquire done_
      done;
      Alcotest.(check int) "no failed operations across upgrade" 0 !failures;
      Alcotest.(check bool) "work happened" true (!writes > 50);
      Alcotest.(check bool) "pause is small" true
        (Int64.compare report.Bento.Upgrade.pause_ns (Sim.Time.ms 50) < 0))

let test_allocator_state_transferred () =
  with_xv6 (fun _m os _vfs h ->
      (* push the allocator rotor forward *)
      for i = 0 to 49 do
        ok (Kernel.Os.write_file os (Printf.sprintf "/a%d" i) (payload 8192))
      done;
      let report = Bento.Upgrade.upgrade h v2_maker in
      Alcotest.(check bool) "rotors transferred" true
        (report.Bento.Upgrade.transferred_ints >= 4);
      (* allocation still works and does not corrupt: new + old data *)
      for i = 0 to 49 do
        ok (Kernel.Os.write_file os (Printf.sprintf "/b%d" i) (payload 8192))
      done;
      for i = 0 to 49 do
        Alcotest.(check bool)
          (Printf.sprintf "old a%d intact" i)
          true
          (Bytes.equal (payload 8192)
             (ok (Kernel.Os.read_file os (Printf.sprintf "/a%d" i))))
      done)

let test_chained_upgrades_preserve_counters () =
  with_xv6 (fun _m os _vfs h ->
      ok (Kernel.Os.write_file os "/x" (bytes_of_string "1"));
      let _ = Bento.Upgrade.upgrade h v2_maker in
      ok (Kernel.Os.write_file os "/y" (bytes_of_string "2"));
      (* v2 -> v2: total_ops must carry over through extract/restore *)
      let _ = Bento.Upgrade.upgrade h v2_maker in
      ok (Kernel.Os.write_file os "/z" (bytes_of_string "3"));
      Alcotest.(check string) "all three files" "123"
        (String.concat ""
           (List.map
              (fun p -> Bytes.to_string (ok (Kernel.Os.read_file os p)))
              [ "/x"; "/y"; "/z" ])))

(* the v2 lookup cache must never serve stale entries *)
let test_v2_lookup_cache_invalidation () =
  in_sim (fun machine ->
      ok (Bento.Bentofs.mkfs machine v2_maker);
      let vfs, h = ok (Bento.Bentofs.mount ~background:false machine v2_maker) in
      let os = Kernel.Os.create vfs in
      Alcotest.(check int) "v2 mounted" 2 (Bento.Bentofs.current_version h);
      ok (Kernel.Os.write_file os "/a" (bytes_of_string "one"));
      Alcotest.(check string) "warm" "one"
        (Bytes.to_string (ok (Kernel.Os.read_file os "/a")));
      (* rename over a cached name *)
      ok (Kernel.Os.write_file os "/b" (bytes_of_string "two"));
      ok (Kernel.Os.rename os "/b" "/a");
      Alcotest.(check string) "cache invalidated on rename" "two"
        (Bytes.to_string (ok (Kernel.Os.read_file os "/a")));
      ok (Kernel.Os.unlink os "/a");
      check_res "cache invalidated on unlink" Kernel.Errno.ENOENT
        (Kernel.Os.stat os "/a");
      (* recreate with same name: new inode must be found *)
      ok (Kernel.Os.write_file os "/a" (bytes_of_string "three"));
      Alcotest.(check string) "recreate" "three"
        (Bytes.to_string (ok (Kernel.Os.read_file os "/a")));
      Bento.Bentofs.unmount vfs h)

let test_registry () =
  let reg = Bento.Registry.create () in
  Bento.Registry.register reg "xv6fs" xv6_maker;
  Bento.Registry.register reg "xv6fs_v2" v2_maker;
  Alcotest.(check (list string)) "registered" [ "xv6fs"; "xv6fs_v2" ]
    (Bento.Registry.registered reg);
  (match Bento.Registry.register reg "xv6fs" xv6_maker with
  | () -> Alcotest.fail "duplicate registration accepted"
  | exception Bento.Registry.Already_registered _ -> ());
  in_sim (fun machine ->
      ok (Bento.Registry.mkfs reg "xv6fs" machine);
      let vfs, h = ok (Bento.Registry.mount ~background:false reg "xv6fs" machine) in
      (* rmmod while mounted must fail *)
      (match Bento.Registry.unregister reg "xv6fs" with
      | () -> Alcotest.fail "rmmod while mounted accepted"
      | exception Bento.Registry.Busy _ -> ());
      Bento.Registry.unmount reg "xv6fs" vfs h;
      Bento.Registry.unregister reg "xv6fs")

let suite =
  [
    tc "basic upgrade" `Quick test_basic_upgrade;
    tc "open files survive" `Quick test_open_files_survive;
    tc "upgrade under load" `Quick test_upgrade_under_load;
    tc "allocator state transferred" `Quick test_allocator_state_transferred;
    tc "chained upgrades" `Quick test_chained_upgrades_preserve_counters;
    tc "v2 lookup cache invalidation" `Quick test_v2_lookup_cache_invalidation;
    tc "module registry insmod/rmmod" `Quick test_registry;
  ]
