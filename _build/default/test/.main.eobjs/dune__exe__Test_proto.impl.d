test/test_proto.ml: Alcotest Bytes Fusesim Kernel List QCheck QCheck_alcotest String
