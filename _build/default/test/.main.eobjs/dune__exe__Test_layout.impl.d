test/test_layout.ml: Alcotest Array Bytes Char Ext4sim Int64 List QCheck QCheck_alcotest String Util Xv6fs
