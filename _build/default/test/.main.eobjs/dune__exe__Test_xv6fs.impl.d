test/test_xv6fs.ml: Alcotest Bento Bytes Device Helpers Kernel List Printf Sim Xv6fs
