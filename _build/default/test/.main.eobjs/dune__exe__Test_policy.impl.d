test/test_policy.ml: Alcotest Bugstudy Bytes Device Float Helpers Kernel List Printf Sim
