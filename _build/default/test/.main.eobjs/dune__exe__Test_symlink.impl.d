test/test_symlink.ml: Alcotest Bento Bento_user Bytes Ext4sim Helpers Kernel Vfs_xv6
