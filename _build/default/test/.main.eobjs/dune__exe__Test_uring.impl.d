test/test_uring.ml: Alcotest Bytes Helpers Int64 Kernel List Printf
