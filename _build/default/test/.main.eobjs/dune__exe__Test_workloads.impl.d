test/test_workloads.ml: Alcotest Array Filename Hashtbl Helpers Int64 Kernel List Printf Sim Workloads
