test/test_upgrade.ml: Alcotest Bento Bytes Helpers Int64 Kernel List Printf Sim String Xv6fs
