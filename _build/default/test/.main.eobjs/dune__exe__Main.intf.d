test/main.mli:
