test/test_os.ml: Alcotest Bytes Helpers Kernel List String Xv6fs
