test/test_fsck.ml: Alcotest Bento Bytes Char Device Helpers Kernel List Printf QCheck QCheck_alcotest Sim String Vfs_xv6 Xv6fs
