test/helpers.ml: Alcotest Bento Bytes Char Kernel Sim Xv6fs
