test/test_bcache.ml: Alcotest Bytes Device Helpers Int64 Kernel List Sim
