test/test_model.ml: Alcotest Bento Bento_user Bytes Ext4sim Hashtbl Helpers Kernel List Option Printf QCheck QCheck_alcotest String Vfs_xv6
