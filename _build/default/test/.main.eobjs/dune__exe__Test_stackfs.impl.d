test/test_stackfs.ml: Alcotest Bento Bento_user Bytes Helpers Kernel String Xv6fs
