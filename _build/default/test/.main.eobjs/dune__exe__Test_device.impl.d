test/test_device.ml: Alcotest Array Bytes Device Int64 Printf Sim
