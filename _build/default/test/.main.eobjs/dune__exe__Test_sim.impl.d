test/test_sim.ml: Alcotest Buffer Int64 List Printexc Printf QCheck QCheck_alcotest Sim
