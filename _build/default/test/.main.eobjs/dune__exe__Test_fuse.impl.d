test/test_fuse.ml: Alcotest Bento Bento_user Bytes Fusesim Helpers Int64 Kernel Printf Sim
