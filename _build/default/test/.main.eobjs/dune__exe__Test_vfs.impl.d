test/test_vfs.ml: Alcotest Bento Bytes Device Helpers Kernel Printf Sim
