test/test_vfs_xv6.ml: Alcotest Bento Bytes Device Helpers Kernel List Printf Sim Vfs_xv6 Xv6fs
