test/test_ext4.ml: Alcotest Bytes Device Ext4sim Helpers Kernel List Printf QCheck QCheck_alcotest Sim String
