test/test_bentoks.ml: Alcotest Bento Bytes Device Helpers Int64 Kernel List Printf
