(** Tests of the C-style VFS baseline, including on-disk compatibility with
    the Bento version (same format, different implementations). *)

open Helpers

let tc = Alcotest.test_case

let with_cfs ?disk_blocks f =
  in_sim ?disk_blocks (fun machine ->
      ok (Vfs_xv6.mkfs machine);
      let vfs = ok (Vfs_xv6.mount ~background:false machine) in
      let os = Kernel.Os.create vfs in
      f machine os vfs;
      Vfs_xv6.unmount vfs)

let read_str os path = Bytes.to_string (ok (Kernel.Os.read_file os path))

let test_basic_ops () =
  with_cfs (fun _m os _ ->
      ok (Kernel.Os.mkdir os "/d");
      ok (Kernel.Os.write_file os "/d/f" (bytes_of_string "c-kernel"));
      Alcotest.(check string) "read" "c-kernel" (read_str os "/d/f");
      ok (Kernel.Os.rename os "/d/f" "/d/g");
      Alcotest.(check string) "renamed" "c-kernel" (read_str os "/d/g");
      ok (Kernel.Os.unlink os "/d/g");
      ok (Kernel.Os.rmdir os "/d"))

let test_large_file () =
  with_cfs ~disk_blocks:(48 * 1024) (fun _m os _ ->
      let size = (Xv6fs.Layout.ndirect + Xv6fs.Layout.nindirect + 3) * 4096 in
      let data = payload size in
      let fd = ok (Kernel.Os.open_ os "/big" Kernel.Os.(creat wronly)) in
      let _ = ok (Kernel.Os.pwrite os fd ~pos:0 data) in
      ok (Kernel.Os.fsync os fd);
      ok (Kernel.Os.close os fd);
      Alcotest.(check bool) "content" true
        (Bytes.equal data (ok (Kernel.Os.read_file os "/big"))))

let test_crash_recovery () =
  in_sim (fun machine ->
      ok (Vfs_xv6.mkfs machine);
      let vfs = ok (Vfs_xv6.mount ~background:false machine) in
      let os = Kernel.Os.create vfs in
      let fd = ok (Kernel.Os.open_ os "/f" Kernel.Os.(creat wronly)) in
      let _ = ok (Kernel.Os.write os fd (bytes_of_string "stable")) in
      ok (Kernel.Os.fsync os fd);
      Device.Ssd.crash (Kernel.Machine.disk machine);
      let vfs2 = ok (Vfs_xv6.mount ~background:false machine) in
      let os2 = Kernel.Os.create vfs2 in
      Alcotest.(check string) "recovered" "stable"
        (Bytes.to_string (ok (Kernel.Os.read_file os2 "/f")));
      Vfs_xv6.unmount vfs2;
      ignore (vfs, os))

(* The same image must mount under either implementation: format with the
   Bento mkfs, fill via the C mount, then read everything back through a
   Bento mount. *)
let test_cross_implementation_image () =
  in_sim (fun machine ->
      ok (Bento.Bentofs.mkfs machine xv6_maker);
      let vfs = ok (Vfs_xv6.mount ~background:false machine) in
      let os = Kernel.Os.create vfs in
      ok (Kernel.Os.mkdir os "/shared");
      for i = 0 to 9 do
        ok
          (Kernel.Os.write_file os
             (Printf.sprintf "/shared/f%d" i)
             (bytes_of_string (Printf.sprintf "payload-%d" i)))
      done;
      Vfs_xv6.unmount vfs;
      let vfs2, h2 = ok (Bento.Bentofs.mount ~background:false machine xv6_maker) in
      let os2 = Kernel.Os.create vfs2 in
      for i = 0 to 9 do
        Alcotest.(check string)
          (Printf.sprintf "bento reads c-written file %d" i)
          (Printf.sprintf "payload-%d" i)
          (Bytes.to_string
             (ok (Kernel.Os.read_file os2 (Printf.sprintf "/shared/f%d" i))))
      done;
      ok (Kernel.Os.write_file os2 "/shared/from-bento" (bytes_of_string "b"));
      Bento.Bentofs.unmount vfs2 h2;
      (* and back again *)
      let vfs3 = ok (Vfs_xv6.mount ~background:false machine) in
      let os3 = Kernel.Os.create vfs3 in
      Alcotest.(check string) "c reads bento-written file" "b"
        (Bytes.to_string (ok (Kernel.Os.read_file os3 "/shared/from-bento")));
      Vfs_xv6.unmount vfs3)

let test_concurrent_metadata () =
  with_cfs (fun machine os _ ->
      let done_ = Sim.Sync.Semaphore.create 0 in
      for w = 0 to 7 do
        Kernel.Machine.spawn machine (fun () ->
            let dir = Printf.sprintf "/t%d" w in
            ok (Kernel.Os.mkdir os dir);
            for i = 0 to 9 do
              ok
                (Kernel.Os.write_file os
                   (Printf.sprintf "%s/f%d" dir i)
                   (bytes_of_string "x"))
            done;
            for i = 0 to 9 do
              ok (Kernel.Os.unlink os (Printf.sprintf "%s/f%d" dir i))
            done;
            ok (Kernel.Os.rmdir os dir);
            Sim.Sync.Semaphore.release done_)
      done;
      for _ = 0 to 7 do
        Sim.Sync.Semaphore.acquire done_
      done;
      let entries = ok (Kernel.Os.readdir os "/") in
      Alcotest.(check int) "root back to dots only" 2 (List.length entries))

let suite =
  [
    tc "basic ops" `Quick test_basic_ops;
    tc "large file" `Quick test_large_file;
    tc "crash recovery" `Quick test_crash_recovery;
    tc "cross-implementation image" `Quick test_cross_implementation_image;
    tc "concurrent metadata" `Quick test_concurrent_metadata;
  ]
