(** Behavioural tests of the log commit policy the benchmarks rely on
    (documented in DESIGN.md): metadata operations commit (and flush)
    eagerly; buffered data writes do not commit until fsync, sync, or log
    pressure. Also checks the bug-study aggregates against the paper's
    prose. *)

open Helpers

let tc = Alcotest.test_case

let flushes machine =
  Sim.Stats.Counter.get_int
    (Sim.Stats.counter (Device.Ssd.stats (Kernel.Machine.disk machine)) "flushes")

let test_metadata_commits_eagerly () =
  with_xv6 (fun machine os _ _ ->
      let f0 = flushes machine in
      ok (Kernel.Os.mkdir os "/meta");
      Alcotest.(check bool) "mkdir flushed" true (flushes machine > f0);
      let f1 = flushes machine in
      let fd = ok (Kernel.Os.open_ os "/meta/f" Kernel.Os.(creat wronly)) in
      Alcotest.(check bool) "create flushed" true (flushes machine > f1);
      ok (Kernel.Os.close os fd))

let test_buffered_writes_commit_lazily () =
  with_xv6 (fun machine os _ _ ->
      let fd = ok (Kernel.Os.open_ os "/data" Kernel.Os.(creat wronly)) in
      let f0 = flushes machine in
      (* buffered writes within the dirty limit: page cache only *)
      for i = 0 to 15 do
        ignore (ok (Kernel.Os.pwrite os fd ~pos:(i * 4096) (payload 4096)))
      done;
      Alcotest.(check int) "no flush from buffered writes" f0 (flushes machine);
      (* fsync forces the commit *)
      ok (Kernel.Os.fsync os fd);
      Alcotest.(check bool) "fsync flushes" true (flushes machine > f0);
      ok (Kernel.Os.close os fd))

let test_log_pressure_forces_commit () =
  with_xv6 (fun machine os _ _ ->
      let fd = ok (Kernel.Os.open_ os "/big" Kernel.Os.(creat wronly)) in
      let f0 = flushes machine in
      (* far beyond the log capacity (127 blocks): writeback must cycle
         the log through pressure commits without any fsync *)
      let _ = ok (Kernel.Os.pwrite os fd ~pos:0 (payload (4096 * 4096))) in
      ok (Kernel.Os.close os fd);
      (* close writes back; the data volume alone forces commits *)
      Alcotest.(check bool) "pressure commits happened" true
        (flushes machine > f0);
      ok (Kernel.Os.sync os);
      Alcotest.(check bool) "readback intact" true
        (Bytes.equal (payload (4096 * 4096)) (ok (Kernel.Os.read_file os "/big"))))

(* The §2.1 prose claims must fall out of the Table 1 dataset. *)
let test_bugstudy_claims () =
  let c = Bugstudy.Study.claims () in
  Alcotest.(check int) "74 low-level bugs" 74 c.Bugstudy.Study.total;
  let near name expected actual =
    Alcotest.(check bool)
      (Printf.sprintf "%s: %.1f ~ %.0f" name actual expected)
      true
      (Float.abs (actual -. expected) < 1.0)
  in
  near "memory 68%" 68. c.Bugstudy.Study.memory_pct;
  near "leaks 50% of memory" 50. c.Bugstudy.Study.leak_share_of_memory_pct;
  near "rust-preventable 93%" 93. c.Bugstudy.Study.rust_preventable_pct;
  near "oops 26%" 26. c.Bugstudy.Study.oops_pct;
  near "leak effect 34%" 34. c.Bugstudy.Study.leak_effect_pct

let test_errno_codes_roundtrip () =
  List.iter
    (fun (e, _) ->
      match Kernel.Errno.of_code (Kernel.Errno.to_code e) with
      | Some e' when e' = e -> ()
      | _ -> Alcotest.failf "errno %s code roundtrip" (Kernel.Errno.to_string e))
    Kernel.Errno.all

let suite =
  [
    tc "metadata commits eagerly" `Quick test_metadata_commits_eagerly;
    tc "buffered writes commit lazily" `Quick test_buffered_writes_commit_lazily;
    tc "log pressure forces commits" `Quick test_log_pressure_forces_commit;
    tc "bug study claims" `Quick test_bugstudy_claims;
    tc "errno wire codes" `Quick test_errno_codes_roundtrip;
  ]
