(** Tests of the BentoKS capability layer: the ownership/borrow contract of
    §4.4-§4.7. In Rust the compiler rejects these misuses; here the runtime
    checks catch them, and these tests are the proof they do. *)

open Helpers

let tc = Alcotest.test_case

let with_services f =
  in_sim (fun machine ->
      let bc = Kernel.Bcache.create machine in
      let services = Bento.Bentoks.kernel_services machine bc in
      let module K = (val services) in
      f machine (module K : Bento.Bentoks.KSERVICES))

let test_buffer_roundtrip () =
  with_services (fun _m (module K) ->
      let b = K.getblk 10 in
      Bytes.fill (K.Buffer.data b) 0 4096 'z';
      K.bwrite b;
      K.brelse b;
      K.with_bread 10 (fun b' ->
          Alcotest.(check char) "data" 'z' (Bytes.get (K.Buffer.data b') 0)))

let test_use_after_release () =
  with_services (fun _m (module K) ->
      let b = K.bread 5 in
      K.brelse b;
      match K.Buffer.data b with
      | _ -> Alcotest.fail "use-after-release not caught"
      | exception Bento.Bentoks.Use_after_release _ -> ())

let test_double_release () =
  with_services (fun _m (module K) ->
      let b = K.bread 6 in
      K.brelse b;
      match K.brelse b with
      | () -> Alcotest.fail "double release not caught"
      | exception Bento.Bentoks.Double_release _ -> ())

let test_write_after_release () =
  with_services (fun _m (module K) ->
      let b = K.getblk 7 in
      K.brelse b;
      match K.bwrite b with
      | () -> Alcotest.fail "bwrite after release not caught"
      | exception Bento.Bentoks.Use_after_release _ -> ())

let test_with_bread_releases_on_exception () =
  with_services (fun _m (module K) ->
      (match K.with_bread 8 (fun _ -> failwith "fs bug") with
      | _ -> ()
      | exception Failure _ -> ());
      (* buffer must have been released: a new bread must not deadlock *)
      K.with_bread 8 (fun _ -> ()))

let test_pin_prevents_eviction () =
  in_sim (fun machine ->
      let bc = Kernel.Bcache.create ~capacity:8 machine in
      let services = Bento.Bentoks.kernel_services machine bc in
      let module K = (val services) in
      let b = K.getblk 1 in
      Bytes.fill (K.Buffer.data b) 0 4096 'p';
      K.pin b;
      K.brelse b;
      (* thrash the cache far past capacity *)
      for i = 100 to 140 do
        K.with_getblk i (fun b' -> Bytes.fill (K.Buffer.data b') 0 4096 'x')
      done;
      (* block 1 must still be cached with its contents (no disk write
         happened, so eviction would have lost the data) *)
      let b' = K.bread 1 in
      Alcotest.(check char) "pinned data intact" 'p' (Bytes.get (K.Buffer.data b') 0);
      K.unpin b';
      K.brelse b')

let test_bwrite_all_parallelism () =
  in_sim (fun machine ->
      let bc = Kernel.Bcache.create machine in
      let services = Bento.Bentoks.kernel_services machine bc in
      let module K = (val services) in
      (* contiguous run + scattered singles: all should complete *)
      let bufs = List.init 24 (fun i -> K.getblk (if i < 16 then 100 + i else 1000 + (i * 7))) in
      List.iter (fun b -> Bytes.fill (K.Buffer.data b) 0 4096 'q') bufs;
      let t0 = Kernel.Machine.now machine in
      K.bwrite_all bufs;
      let dt = Int64.sub (Kernel.Machine.now machine) t0 in
      List.iter K.brelse bufs;
      (* 24 blocks: a serial per-block issue would cost 24 x write_base;
         batching + channels must beat half of that *)
      let serial = Int64.mul 24L (Device.Ssd.default_config.Device.Ssd.write_base) in
      Alcotest.(check bool)
        (Printf.sprintf "parallel submit %Ld < serial %Ld" dt serial)
        true
        (Int64.compare (Int64.mul dt 2L) serial < 0))

let test_capabilities_cannot_outlive_flush_order () =
  (* flush gives durability to everything written before it *)
  in_sim (fun machine ->
      let bc = Kernel.Bcache.create machine in
      let services = Bento.Bentoks.kernel_services machine bc in
      let module K = (val services) in
      K.with_getblk 42 (fun b ->
          Bytes.fill (K.Buffer.data b) 0 4096 'd';
          K.bwrite b);
      K.flush ();
      Device.Ssd.crash (Kernel.Machine.disk machine);
      let data = Device.Ssd.Offline.stable_read (Kernel.Machine.disk machine) 42 in
      Alcotest.(check char) "durable after flush" 'd' (Bytes.get data 0))

let suite =
  [
    tc "buffer roundtrip" `Quick test_buffer_roundtrip;
    tc "use-after-release caught" `Quick test_use_after_release;
    tc "double release caught" `Quick test_double_release;
    tc "write-after-release caught" `Quick test_write_after_release;
    tc "scoped release on exception" `Quick test_with_bread_releases_on_exception;
    tc "pin prevents eviction" `Quick test_pin_prevents_eviction;
    tc "bwrite_all parallel submit" `Quick test_bwrite_all_parallelism;
    tc "flush ordering durability" `Quick test_capabilities_cannot_outlive_flush_order;
  ]
