(** Model-based and differential testing: random operation sequences are
    applied simultaneously to an in-memory reference model and to real
    mounts; afterwards the visible tree must match the model exactly — and
    all four stacks (Bento, C-VFS, FUSE, ext4) must agree with each other,
    since they implement the same POSIX-ish contract. *)

open Helpers

let tc = Alcotest.test_case

(* The operation universe: a few file and directory names in a two-level
   namespace, with sizes spanning hole/indirect boundaries. *)
type mop =
  | Write_file of int * int * int  (** name idx, seed, size *)
  | Append of int * int * int
  | Unlink of int
  | Rename of int * int
  | Mkdir of int
  | Rmdir of int
  | Truncate of int * int
  | Symlink of int * int  (** target idx, link name idx *)

let nfiles = 8
let ndirs = 3

let file_name i = Printf.sprintf "/f%d" (i mod nfiles)
let dir_name i = Printf.sprintf "/d%d" (i mod ndirs)

let gen_op =
  QCheck.Gen.(
    frequency
      [
        (5, map3 (fun a b c -> Write_file (a, b, c)) (int_bound 20) (int_bound 1000)
               (int_range 0 40_000));
        (3, map3 (fun a b c -> Append (a, b, c)) (int_bound 20) (int_bound 1000)
               (int_range 1 8_000));
        (3, map (fun a -> Unlink a) (int_bound 20));
        (2, map2 (fun a b -> Rename (a, b)) (int_bound 20) (int_bound 20));
        (1, map (fun a -> Mkdir a) (int_bound 10));
        (1, map (fun a -> Rmdir a) (int_bound 10));
        (2, map2 (fun a b -> Truncate (a, b)) (int_bound 20) (int_range 0 20_000));
        (1, map2 (fun a b -> Symlink (a, b)) (int_bound 20) (int_bound 20));
      ])

(* Reference model: path -> contents for files, path -> target for links. *)
type model = {
  files : (string, Bytes.t) Hashtbl.t;
  links : (string, string) Hashtbl.t;
  dirs : (string, unit) Hashtbl.t;
}

let model_create () =
  { files = Hashtbl.create 16; links = Hashtbl.create 8; dirs = Hashtbl.create 4 }

let payload_for seed size = payload ~seed size

(* Apply one op to both the model and the mount; semantic rules mirror the
   syscall layer: errors are allowed, but both sides must agree on the
   effect. Writing through a symlink writes its target. *)
let apply os (m : model) op =
  (* writing through a symlink affects its (transitively resolved) target *)
  let rec resolve_name ?(depth = 0) n =
    if depth > 8 then n
    else
      match Hashtbl.find_opt m.links n with
      | Some t -> resolve_name ~depth:(depth + 1) t
      | None -> n
  in
  match op with
  | Write_file (i, seed, size) ->
      let name = resolve_name (file_name i) in
      let data = payload_for seed size in
      (match Kernel.Os.write_file os (file_name i) data with
      | Ok () ->
          (* write_file follows links: the resolved target gets the data,
             the link itself is untouched *)
          Hashtbl.replace m.files name data
      | Error _ -> ())
  | Append (i, seed, size) -> (
      let name = file_name i in
      match Kernel.Os.open_ os name Kernel.Os.(appendf wronly) with
      | Error _ -> ()
      | Ok fd ->
          let data = payload_for seed size in
          (match Kernel.Os.write os fd data with
          | Ok _ ->
              let target = resolve_name name in
              let old =
                Option.value ~default:Bytes.empty (Hashtbl.find_opt m.files target)
              in
              Hashtbl.replace m.files target (Bytes.cat old data)
          | Error _ -> ());
          ok (Kernel.Os.close os fd))
  | Unlink i -> (
      let name = file_name i in
      match Kernel.Os.unlink os name with
      | Ok () ->
          if Hashtbl.mem m.links name then Hashtbl.remove m.links name
          else Hashtbl.remove m.files name
      | Error _ -> ())
  | Rename (a, b) -> (
      let from_ = file_name a and to_ = file_name b in
      match Kernel.Os.rename os from_ to_ with
      | Ok () ->
          if from_ <> to_ then begin
            (match Hashtbl.find_opt m.files from_ with
            | Some d ->
                Hashtbl.remove m.files from_;
                Hashtbl.remove m.links to_;
                Hashtbl.replace m.files to_ d
            | None -> (
                match Hashtbl.find_opt m.links from_ with
                | Some t ->
                    Hashtbl.remove m.links from_;
                    Hashtbl.remove m.files to_;
                    Hashtbl.replace m.links to_ t
                | None -> ()))
          end
      | Error _ -> ())
  | Mkdir i -> (
      match Kernel.Os.mkdir os (dir_name i) with
      | Ok () -> Hashtbl.replace m.dirs (dir_name i) ()
      | Error _ -> ())
  | Rmdir i -> (
      match Kernel.Os.rmdir os (dir_name i) with
      | Ok () -> Hashtbl.remove m.dirs (dir_name i)
      | Error _ -> ())
  | Truncate (i, size) -> (
      let name = file_name i in
      match Kernel.Os.open_ os name Kernel.Os.rdwr with
      | Error _ -> ()
      | Ok fd ->
          (match Kernel.Os.ftruncate os fd size with
          | Ok () ->
              let target = resolve_name name in
              let old =
                Option.value ~default:Bytes.empty (Hashtbl.find_opt m.files target)
              in
              let data =
                if size <= Bytes.length old then Bytes.sub old 0 size
                else Bytes.cat old (Bytes.make (size - Bytes.length old) '\000')
              in
              Hashtbl.replace m.files target data
          | Error _ -> ());
          ok (Kernel.Os.close os fd))
  | Symlink (t, l) -> (
      let target = file_name t and linkname = file_name l in
      match Kernel.Os.symlink os target linkname with
      | Ok () -> Hashtbl.replace m.links linkname target
      | Error _ -> ())

(* Compare the mount's root against the model. *)
let check_against_model os (m : model) label =
  (* every model file reads back exactly *)
  Hashtbl.iter
    (fun path data ->
      match Kernel.Os.read_file os path with
      | Ok got ->
          if not (Bytes.equal got data) then
            Alcotest.failf "%s: %s content mismatch (%d vs %d bytes)" label path
              (Bytes.length got) (Bytes.length data)
      | Error e ->
          Alcotest.failf "%s: %s missing (%s)" label path
            (Kernel.Errno.to_string e))
    m.files;
  Hashtbl.iter
    (fun path target ->
      match Kernel.Os.readlink os path with
      | Ok t ->
          if t <> target then Alcotest.failf "%s: %s link target" label path
      | Error e ->
          Alcotest.failf "%s: link %s missing (%s)" label path
            (Kernel.Errno.to_string e))
    m.links;
  (* and no extra entries exist *)
  let entries = ok (Kernel.Os.readdir os "/") in
  List.iter
    (fun d ->
      let n = "/" ^ d.Kernel.Vfs.d_name in
      if d.Kernel.Vfs.d_name <> "." && d.Kernel.Vfs.d_name <> ".." then
        if
          (not (Hashtbl.mem m.files n))
          && (not (Hashtbl.mem m.links n))
          && not (Hashtbl.mem m.dirs n)
        then Alcotest.failf "%s: unexpected entry %s" label n)
    entries

let run_sequence_on label mount_fn ops =
  in_sim ~disk_blocks:65536 (fun machine ->
      let os, finish = mount_fn machine in
      let m = model_create () in
      List.iter (fun op -> apply os m op) ops;
      check_against_model os m label;
      finish ())

let mount_bento machine =
  ok (Bento.Bentofs.mkfs machine xv6_maker);
  let vfs, h = ok (Bento.Bentofs.mount ~background:false machine xv6_maker) in
  (Kernel.Os.create vfs, fun () -> Bento.Bentofs.unmount vfs h)

let mount_c machine =
  ok (Vfs_xv6.mkfs machine);
  let vfs = ok (Vfs_xv6.mount ~background:false machine) in
  (Kernel.Os.create vfs, fun () -> Vfs_xv6.unmount vfs)

let mount_fuse machine =
  ok (Bento.Bentofs.mkfs machine xv6_maker);
  let vfs, h = ok (Bento_user.mount ~background:false machine xv6_maker) in
  (Kernel.Os.create vfs, fun () -> Bento_user.unmount vfs h)

let mount_ext4 machine =
  ok (Ext4sim.Ext4.mkfs machine);
  let vfs, h = ok (Ext4sim.Ext4.mount ~background:false machine) in
  (Kernel.Os.create vfs, fun () -> Ext4sim.Ext4.unmount vfs h)

let gen_ops = QCheck.Gen.(list_size (int_range 20 60) gen_op)

let show_op = function
  | Write_file (a, b, c) -> Printf.sprintf "Write_file(%d,%d,%d)" a b c
  | Append (a, b, c) -> Printf.sprintf "Append(%d,%d,%d)" a b c
  | Unlink a -> Printf.sprintf "Unlink(%d)" a
  | Rename (a, b) -> Printf.sprintf "Rename(%d,%d)" a b
  | Mkdir a -> Printf.sprintf "Mkdir(%d)" a
  | Rmdir a -> Printf.sprintf "Rmdir(%d)" a
  | Truncate (a, b) -> Printf.sprintf "Truncate(%d,%d)" a b
  | Symlink (a, b) -> Printf.sprintf "Symlink(%d,%d)" a b

let show_ops ops = String.concat "; " (List.map show_op ops)

let prop_model name mount_fn count =
  QCheck.Test.make ~count ~name (QCheck.make ~print:show_ops gen_ops) (fun ops ->
      run_sequence_on name mount_fn ops;
      true)

let suite =
  [
    QCheck_alcotest.to_alcotest (prop_model "model: bento xv6" mount_bento 20);
    QCheck_alcotest.to_alcotest (prop_model "model: c-kernel xv6" mount_c 10);
    QCheck_alcotest.to_alcotest (prop_model "model: fuse xv6" mount_fuse 5);
    QCheck_alcotest.to_alcotest (prop_model "model: ext4" mount_ext4 10);
    tc "fixed regression sequence" `Quick (fun () ->
        (* a hand-picked sequence covering rename-over-link + truncate *)
        let ops =
          [
            Write_file (0, 1, 10_000);
            Symlink (0, 1);
            Append (1, 2, 500);
            Rename (1, 2);
            Truncate (0, 3_000);
            Write_file (3, 4, 0);
            Unlink (0);
            Mkdir 0;
            Rmdir 0;
          ]
        in
        run_sequence_on "fixed" mount_bento ops);
  ]
