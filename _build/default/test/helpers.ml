(** Shared scaffolding for the test suites: build a machine, mkfs + mount a
    file system, run test bodies inside a simulation fiber. *)

let default_disk_blocks = 65536 (* 256 MB *)

let ok = Kernel.Errno.ok_exn

let xv6_maker : (module Bento.Fs_api.FS_MAKER) = (module Xv6fs.Fs.Make)

(** Run [f] as a fiber on a fresh machine and drain the simulation. *)
let in_sim ?(disk_blocks = default_disk_blocks) f =
  let machine = Kernel.Machine.create ~disk_blocks ~block_size:4096 () in
  let finished = ref false in
  Kernel.Machine.spawn ~name:"test" machine (fun () ->
      f machine;
      finished := true);
  Kernel.Machine.run machine;
  Alcotest.(check bool) "test fiber ran to completion" true !finished

(** mkfs + mount xv6fs over Bento, hand [f] the Os syscall layer. *)
let with_xv6 ?disk_blocks ?(maker = xv6_maker) f =
  in_sim ?disk_blocks (fun machine ->
      ok (Bento.Bentofs.mkfs machine maker);
      let vfs, handle =
        ok (Bento.Bentofs.mount ~background:false machine maker)
      in
      let os = Kernel.Os.create vfs in
      f machine os vfs handle;
      Bento.Bentofs.unmount vfs handle)

let bytes_of_string = Bytes.of_string

(** Deterministic pseudo-random payload of [n] bytes. *)
let payload ?(seed = 7) n =
  let rng = Sim.Rng.create seed in
  Bytes.init n (fun _ -> Char.chr (Sim.Rng.int rng 256))

let check_errno = Alcotest.testable Kernel.Errno.pp ( = )

let check_res name expected = function
  | Ok _ -> Alcotest.failf "%s: expected error %s but succeeded" name
              (Kernel.Errno.to_string expected)
  | Error e -> Alcotest.check check_errno name expected e
