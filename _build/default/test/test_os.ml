(** Tests of the syscall layer: path resolution, file descriptors, offsets,
    and the page-cache-visible semantics the workloads rely on. *)

open Helpers

let tc = Alcotest.test_case

let test_path_resolution () =
  with_xv6 (fun _m os _ _ ->
      ok (Kernel.Os.mkdir os "/a");
      ok (Kernel.Os.mkdir os "/a/b");
      ok (Kernel.Os.write_file os "/a/b/f" (bytes_of_string "x"));
      (* equivalent spellings *)
      List.iter
        (fun p ->
          match Kernel.Os.stat os p with
          | Ok st -> Alcotest.(check int) (p ^ " size") 1 st.Kernel.Vfs.st_size
          | Error e -> Alcotest.failf "%s: %s" p (Kernel.Errno.to_string e))
        [ "/a/b/f"; "//a//b//f"; "/a/./b/./f"; "/a/b/../b/f" ];
      (* invalid paths *)
      check_res "relative" Kernel.Errno.EINVAL (Kernel.Os.stat os "a/b");
      check_res "empty" Kernel.Errno.EINVAL (Kernel.Os.stat os "");
      check_res "through file" Kernel.Errno.ENOTDIR (Kernel.Os.stat os "/a/b/f/g");
      let st = ok (Kernel.Os.stat os "/") in
      Alcotest.(check int) "root ino" 1 st.Kernel.Vfs.st_ino)

let test_name_too_long () =
  with_xv6 (fun _m os _ _ ->
      let long = "/" ^ String.make 100 'n' in
      check_res "create long name" Kernel.Errno.ENAMETOOLONG
        (Kernel.Os.write_file os long (bytes_of_string "x"));
      let ok59 = "/" ^ String.make Xv6fs.Layout.max_name 'n' in
      ok (Kernel.Os.write_file os ok59 (bytes_of_string "x")))

let test_fd_offsets () =
  with_xv6 (fun _m os _ _ ->
      ok (Kernel.Os.write_file os "/f" (bytes_of_string "0123456789"));
      let fd = ok (Kernel.Os.open_ os "/f" Kernel.Os.rdwr) in
      Alcotest.(check string) "seq 1" "012"
        (Bytes.to_string (ok (Kernel.Os.read os fd ~len:3)));
      Alcotest.(check string) "seq 2" "345"
        (Bytes.to_string (ok (Kernel.Os.read os fd ~len:3)));
      ok (Kernel.Os.lseek os fd 8);
      Alcotest.(check string) "post-seek" "89"
        (Bytes.to_string (ok (Kernel.Os.read os fd ~len:5)));
      (* pread must not disturb the offset *)
      ok (Kernel.Os.lseek os fd 2);
      let _ = ok (Kernel.Os.pread os fd ~pos:7 ~len:2) in
      Alcotest.(check string) "offset preserved" "23"
        (Bytes.to_string (ok (Kernel.Os.read os fd ~len:2)));
      ok (Kernel.Os.close os fd))

let test_two_fds_one_file () =
  with_xv6 (fun _m os _ _ ->
      ok (Kernel.Os.write_file os "/f" (bytes_of_string "aaaa"));
      let fd1 = ok (Kernel.Os.open_ os "/f" Kernel.Os.rdwr) in
      let fd2 = ok (Kernel.Os.open_ os "/f" Kernel.Os.rdonly) in
      let _ = ok (Kernel.Os.pwrite os fd1 ~pos:0 (bytes_of_string "bb")) in
      Alcotest.(check string) "fd2 sees fd1's write" "bbaa"
        (Bytes.to_string (ok (Kernel.Os.pread os fd2 ~pos:0 ~len:4)));
      ok (Kernel.Os.close os fd1);
      ok (Kernel.Os.close os fd2))

let test_unlink_while_open () =
  with_xv6 (fun _m os _ _ ->
      ok (Kernel.Os.write_file os "/f" (bytes_of_string "still here"));
      let fd = ok (Kernel.Os.open_ os "/f" Kernel.Os.rdonly) in
      ok (Kernel.Os.unlink os "/f");
      check_res "name gone" Kernel.Errno.ENOENT (Kernel.Os.stat os "/f");
      (* POSIX: data remains readable through the open fd *)
      Alcotest.(check string) "data via fd" "still here"
        (Bytes.to_string (ok (Kernel.Os.pread os fd ~pos:0 ~len:10)));
      ok (Kernel.Os.close os fd);
      (* blocks reclaimed after final close *)
      ok (Kernel.Os.sync os))

let test_ftruncate_and_extend () =
  with_xv6 (fun _m os _ _ ->
      let fd = ok (Kernel.Os.open_ os "/t" Kernel.Os.(creat rdwr)) in
      let _ = ok (Kernel.Os.pwrite os fd ~pos:0 (bytes_of_string "0123456789")) in
      ok (Kernel.Os.ftruncate os fd 4);
      let st = ok (Kernel.Os.fstat os fd) in
      Alcotest.(check int) "shrunk" 4 st.Kernel.Vfs.st_size;
      Alcotest.(check string) "tail cut" "0123"
        (Bytes.to_string (ok (Kernel.Os.pread os fd ~pos:0 ~len:100)));
      (* write past the end: hole reads as zeroes *)
      let _ = ok (Kernel.Os.pwrite os fd ~pos:8 (bytes_of_string "Z")) in
      let got = ok (Kernel.Os.pread os fd ~pos:0 ~len:9) in
      Alcotest.(check bytes) "hole zeroes"
        (Bytes.of_string "0123\000\000\000\000Z") got;
      ok (Kernel.Os.close os fd))

let test_readonly_write_rejected () =
  with_xv6 (fun _m os _ _ ->
      ok (Kernel.Os.write_file os "/r" (bytes_of_string "x"));
      let fd = ok (Kernel.Os.open_ os "/r" Kernel.Os.rdonly) in
      check_res "write on rdonly" Kernel.Errno.EBADF
        (Kernel.Os.pwrite os fd ~pos:0 (bytes_of_string "y"));
      ok (Kernel.Os.close os fd);
      let fd = ok (Kernel.Os.open_ os "/r" Kernel.Os.wronly) in
      check_res "read on wronly" Kernel.Errno.EBADF
        (Kernel.Os.pread os fd ~pos:0 ~len:1);
      ok (Kernel.Os.close os fd))

let test_open_dir_for_write_rejected () =
  with_xv6 (fun _m os _ _ ->
      ok (Kernel.Os.mkdir os "/d");
      check_res "dir wronly" Kernel.Errno.EISDIR
        (Kernel.Os.open_ os "/d" Kernel.Os.wronly))

let test_dcache_invalidation_on_rename () =
  with_xv6 (fun _m os _ _ ->
      ok (Kernel.Os.write_file os "/old" (bytes_of_string "v"));
      let _ = ok (Kernel.Os.stat os "/old") (* warm the dcache *) in
      ok (Kernel.Os.rename os "/old" "/new");
      check_res "stale name invalidated" Kernel.Errno.ENOENT
        (Kernel.Os.stat os "/old");
      let _ = ok (Kernel.Os.stat os "/new") in
      ok (Kernel.Os.unlink os "/new");
      check_res "unlinked invalidated" Kernel.Errno.ENOENT
        (Kernel.Os.stat os "/new"))

(* regression (found by model-based testing): shrinking a file must not
   let a later extension resurrect the old bytes *)
let test_shrink_then_extend_zeroes () =
  with_xv6 (fun _m os _ _ ->
      let fd = ok (Kernel.Os.open_ os "/z" Kernel.Os.(creat rdwr)) in
      let _ = ok (Kernel.Os.pwrite os fd ~pos:0 (Bytes.make 20000 'X')) in
      ok (Kernel.Os.fsync os fd);
      ok (Kernel.Os.ftruncate os fd 214);
      ok (Kernel.Os.ftruncate os fd 4318);
      let got = ok (Kernel.Os.pread os fd ~pos:0 ~len:4318) in
      let expect = Bytes.cat (Bytes.make 214 'X') (Bytes.make (4318 - 214) '\000') in
      Alcotest.(check bytes) "extension reads zeroes" expect got;
      (* the shrink must have freed the tail blocks *)
      ok (Kernel.Os.close os fd);
      ok (Kernel.Os.sync os);
      let free_now = (Kernel.Os.statfs os).Kernel.Vfs.f_bfree in
      ok (Kernel.Os.unlink os "/z");
      ok (Kernel.Os.sync os);
      let free_after = (Kernel.Os.statfs os).Kernel.Vfs.f_bfree in
      Alcotest.(check bool) "only ~2 blocks were still held" true
        (free_after - free_now <= 3))

let suite =
  [
    tc "path resolution" `Quick test_path_resolution;
    tc "name too long" `Quick test_name_too_long;
    tc "fd offsets" `Quick test_fd_offsets;
    tc "two fds, one file" `Quick test_two_fds_one_file;
    tc "unlink while open" `Quick test_unlink_while_open;
    tc "ftruncate + holes" `Quick test_ftruncate_and_extend;
    tc "permission flags" `Quick test_readonly_write_rejected;
    tc "open dir for write" `Quick test_open_dir_for_write_rejected;
    tc "dcache invalidation" `Quick test_dcache_invalidation_on_rename;
    tc "shrink-then-extend zeroes" `Quick test_shrink_then_extend_zeroes;
  ]
