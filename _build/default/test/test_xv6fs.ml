(** Integration tests of the xv6 file system mounted through Bento. *)

open Helpers

let tc = Alcotest.test_case

let read_str os path = Bytes.to_string (ok (Kernel.Os.read_file os path))

let test_create_read_write () =
  with_xv6 (fun _m os _vfs _h ->
      ok (Kernel.Os.write_file os "/hello.txt" (bytes_of_string "hello bento"));
      Alcotest.(check string) "read back" "hello bento" (read_str os "/hello.txt");
      let st = ok (Kernel.Os.stat os "/hello.txt") in
      Alcotest.(check int) "size" 11 st.Kernel.Vfs.st_size;
      Alcotest.(check int) "nlink" 1 st.Kernel.Vfs.st_nlink)

let test_overwrite () =
  with_xv6 (fun _m os _ _ ->
      ok (Kernel.Os.write_file os "/f" (bytes_of_string "aaaaaaaa"));
      ok (Kernel.Os.write_file os "/f" (bytes_of_string "bb"));
      Alcotest.(check string) "truncating overwrite" "bb" (read_str os "/f"))

let test_append () =
  with_xv6 (fun _m os _ _ ->
      ok (Kernel.Os.write_file os "/f" (bytes_of_string "one"));
      let fd = ok (Kernel.Os.open_ os "/f" Kernel.Os.(appendf wronly)) in
      let _ = ok (Kernel.Os.write os fd (bytes_of_string "two")) in
      ok (Kernel.Os.close os fd);
      Alcotest.(check string) "appended" "onetwo" (read_str os "/f"))

let test_large_file_double_indirect () =
  (* cross the direct (48 KB) and single-indirect (4 MB + 48 KB)
     boundaries so the double-indirect path is exercised *)
  with_xv6 ~disk_blocks:(48 * 1024) (fun _m os _ _ ->
      let size = (Xv6fs.Layout.ndirect + Xv6fs.Layout.nindirect + 5) * 4096 in
      let data = payload size in
      let fd = ok (Kernel.Os.open_ os "/big" Kernel.Os.(creat wronly)) in
      let written = ok (Kernel.Os.pwrite os fd ~pos:0 data) in
      Alcotest.(check int) "wrote all" size written;
      ok (Kernel.Os.fsync os fd);
      ok (Kernel.Os.close os fd);
      let got = ok (Kernel.Os.read_file os "/big") in
      Alcotest.(check bool) "content equal" true (Bytes.equal data got))

let test_sparse_holes () =
  with_xv6 (fun _m os _ _ ->
      let fd = ok (Kernel.Os.open_ os "/sparse" Kernel.Os.(creat rdwr)) in
      let _ = ok (Kernel.Os.pwrite os fd ~pos:(10 * 4096) (bytes_of_string "end")) in
      let hole = ok (Kernel.Os.pread os fd ~pos:4096 ~len:8) in
      Alcotest.(check bytes) "hole reads zeroes" (Bytes.make 8 '\000') hole;
      let tail = ok (Kernel.Os.pread os fd ~pos:(10 * 4096) ~len:3) in
      Alcotest.(check string) "tail" "end" (Bytes.to_string tail);
      ok (Kernel.Os.close os fd))

let test_mkdir_tree () =
  with_xv6 (fun _m os _ _ ->
      ok (Kernel.Os.mkdir os "/a");
      ok (Kernel.Os.mkdir os "/a/b");
      ok (Kernel.Os.mkdir os "/a/b/c");
      ok (Kernel.Os.write_file os "/a/b/c/f" (bytes_of_string "deep"));
      Alcotest.(check string) "deep read" "deep" (read_str os "/a/b/c/f");
      let names =
        ok (Kernel.Os.readdir os "/a/b")
        |> List.map (fun d -> d.Kernel.Vfs.d_name)
        |> List.sort compare
      in
      Alcotest.(check (list string)) "readdir" [ "."; ".."; "c" ] names)

let test_unlink () =
  with_xv6 (fun _m os _ _ ->
      ok (Kernel.Os.write_file os "/gone" (bytes_of_string "x"));
      ok (Kernel.Os.unlink os "/gone");
      check_res "unlink removes" Kernel.Errno.ENOENT (Kernel.Os.stat os "/gone");
      check_res "double unlink" Kernel.Errno.ENOENT (Kernel.Os.unlink os "/gone"))

let test_unlink_frees_blocks () =
  with_xv6 (fun _m os _ _ ->
      let free0 = (Kernel.Os.statfs os).Kernel.Vfs.f_bfree in
      ok (Kernel.Os.write_file os "/f" (payload (64 * 4096)));
      ok (Kernel.Os.sync os);
      let free1 = (Kernel.Os.statfs os).Kernel.Vfs.f_bfree in
      Alcotest.(check bool) "blocks consumed" true (free1 < free0);
      ok (Kernel.Os.unlink os "/f");
      ok (Kernel.Os.sync os);
      let free2 = (Kernel.Os.statfs os).Kernel.Vfs.f_bfree in
      Alcotest.(check int) "all blocks returned" free0 free2)

let test_rmdir () =
  with_xv6 (fun _m os _ _ ->
      ok (Kernel.Os.mkdir os "/d");
      ok (Kernel.Os.write_file os "/d/f" (bytes_of_string "x"));
      check_res "rmdir non-empty" Kernel.Errno.ENOTEMPTY (Kernel.Os.rmdir os "/d");
      ok (Kernel.Os.unlink os "/d/f");
      ok (Kernel.Os.rmdir os "/d");
      check_res "gone" Kernel.Errno.ENOENT (Kernel.Os.stat os "/d"))

let test_rename_simple () =
  with_xv6 (fun _m os _ _ ->
      ok (Kernel.Os.write_file os "/old" (bytes_of_string "data"));
      ok (Kernel.Os.rename os "/old" "/new");
      check_res "old gone" Kernel.Errno.ENOENT (Kernel.Os.stat os "/old");
      Alcotest.(check string) "moved" "data" (read_str os "/new"))

let test_rename_replace () =
  with_xv6 (fun _m os _ _ ->
      ok (Kernel.Os.write_file os "/a" (bytes_of_string "aaa"));
      ok (Kernel.Os.write_file os "/b" (bytes_of_string "bbb"));
      ok (Kernel.Os.rename os "/a" "/b");
      Alcotest.(check string) "replaced" "aaa" (read_str os "/b");
      check_res "a gone" Kernel.Errno.ENOENT (Kernel.Os.stat os "/a"))

let test_rename_across_dirs () =
  with_xv6 (fun _m os _ _ ->
      ok (Kernel.Os.mkdir os "/src");
      ok (Kernel.Os.mkdir os "/dst");
      ok (Kernel.Os.mkdir os "/src/sub");
      ok (Kernel.Os.write_file os "/src/sub/f" (bytes_of_string "payload"));
      ok (Kernel.Os.rename os "/src/sub" "/dst/sub");
      Alcotest.(check string) "file moved with dir" "payload"
        (read_str os "/dst/sub/f");
      check_res "src empty" Kernel.Errno.ENOENT (Kernel.Os.stat os "/src/sub");
      (* ".." of the moved dir must now point at /dst *)
      let dst = ok (Kernel.Os.stat os "/dst") in
      let dotdot = ok (Kernel.Os.stat os "/dst/sub/..") in
      Alcotest.(check int) "dotdot updated" dst.Kernel.Vfs.st_ino
        dotdot.Kernel.Vfs.st_ino)

let test_hard_link () =
  with_xv6 (fun _m os _ _ ->
      ok (Kernel.Os.write_file os "/orig" (bytes_of_string "shared"));
      ok (Kernel.Os.link os "/orig" "/alias");
      Alcotest.(check string) "alias reads" "shared" (read_str os "/alias");
      let st = ok (Kernel.Os.stat os "/alias") in
      Alcotest.(check int) "nlink 2" 2 st.Kernel.Vfs.st_nlink;
      ok (Kernel.Os.unlink os "/orig");
      Alcotest.(check string) "alias survives" "shared" (read_str os "/alias");
      let st = ok (Kernel.Os.stat os "/alias") in
      Alcotest.(check int) "nlink back to 1" 1 st.Kernel.Vfs.st_nlink)

let test_errors () =
  with_xv6 (fun _m os _ _ ->
      check_res "missing" Kernel.Errno.ENOENT (Kernel.Os.stat os "/nope");
      ok (Kernel.Os.write_file os "/f" (bytes_of_string "x"));
      check_res "file as dir" Kernel.Errno.ENOTDIR (Kernel.Os.stat os "/f/sub");
      check_res "mkdir exists" Kernel.Errno.EEXIST (Kernel.Os.mkdir os "/f");
      ok (Kernel.Os.mkdir os "/d");
      check_res "unlink dir" Kernel.Errno.EISDIR (Kernel.Os.unlink os "/d");
      check_res "rmdir file" Kernel.Errno.ENOTDIR (Kernel.Os.rmdir os "/f");
      check_res "bad fd" Kernel.Errno.EBADF (Kernel.Os.close os 99))

let test_many_files () =
  with_xv6 (fun _m os _ _ ->
      ok (Kernel.Os.mkdir os "/pile");
      for i = 0 to 199 do
        ok
          (Kernel.Os.write_file os
             (Printf.sprintf "/pile/file%03d" i)
             (bytes_of_string (string_of_int i)))
      done;
      let entries = ok (Kernel.Os.readdir os "/pile") in
      Alcotest.(check int) "200 files + dots" 202 (List.length entries);
      for i = 0 to 199 do
        Alcotest.(check string)
          (Printf.sprintf "file %d" i)
          (string_of_int i)
          (read_str os (Printf.sprintf "/pile/file%03d" i))
      done;
      for i = 0 to 199 do
        ok (Kernel.Os.unlink os (Printf.sprintf "/pile/file%03d" i))
      done;
      ok (Kernel.Os.rmdir os "/pile"))

let test_persistence_across_remount () =
  in_sim (fun machine ->
      ok (Bento.Bentofs.mkfs machine xv6_maker);
      let vfs, h = ok (Bento.Bentofs.mount ~background:false machine xv6_maker) in
      let os = Kernel.Os.create vfs in
      ok (Kernel.Os.mkdir os "/persist");
      ok (Kernel.Os.write_file os "/persist/f" (bytes_of_string "durable"));
      Bento.Bentofs.unmount vfs h;
      (* fresh mount: fresh caches, data must come from the device *)
      let vfs, h = ok (Bento.Bentofs.mount ~background:false machine xv6_maker) in
      let os = Kernel.Os.create vfs in
      Alcotest.(check string)
        "data survived remount" "durable"
        (Bytes.to_string (ok (Kernel.Os.read_file os "/persist/f")));
      Bento.Bentofs.unmount vfs h)

let test_fsync_durability_vs_crash () =
  in_sim (fun machine ->
      ok (Bento.Bentofs.mkfs machine xv6_maker);
      let vfs, h = ok (Bento.Bentofs.mount ~background:false machine xv6_maker) in
      let os = Kernel.Os.create vfs in
      let fd = ok (Kernel.Os.open_ os "/f" Kernel.Os.(creat wronly)) in
      let _ = ok (Kernel.Os.write os fd (bytes_of_string "synced")) in
      ok (Kernel.Os.fsync os fd);
      (* power failure: volatile device cache is lost; no unmount *)
      Device.Ssd.crash (Kernel.Machine.disk machine);
      let vfs2, h2 = ok (Bento.Bentofs.mount ~background:false machine xv6_maker) in
      let os2 = Kernel.Os.create vfs2 in
      Alcotest.(check string)
        "fsynced data survived crash" "synced"
        (Bytes.to_string (ok (Kernel.Os.read_file os2 "/f")));
      Bento.Bentofs.unmount vfs2 h2;
      ignore (vfs, h))

let test_concurrent_writers () =
  with_xv6 (fun machine os _ _ ->
      let done_ = Sim.Sync.Semaphore.create 0 in
      for w = 0 to 7 do
        Kernel.Machine.spawn ~name:(Printf.sprintf "writer%d" w) machine
          (fun () ->
            for i = 0 to 19 do
              ok
                (Kernel.Os.write_file os
                   (Printf.sprintf "/w%d-%d" w i)
                   (bytes_of_string (Printf.sprintf "%d:%d" w i)))
            done;
            Sim.Sync.Semaphore.release done_)
      done;
      for _ = 0 to 7 do
        Sim.Sync.Semaphore.acquire done_
      done;
      for w = 0 to 7 do
        for i = 0 to 19 do
          Alcotest.(check string)
            (Printf.sprintf "w%d-%d" w i)
            (Printf.sprintf "%d:%d" w i)
            (read_str os (Printf.sprintf "/w%d-%d" w i))
        done
      done)

(* exercise keep-aware truncation across the direct / single-indirect /
   double-indirect boundaries *)
let test_partial_truncate_across_levels () =
  with_xv6 ~disk_blocks:(48 * 1024) (fun _m os _ _ ->
      let blocks = Xv6fs.Layout.ndirect + Xv6fs.Layout.nindirect + 50 in
      let size = blocks * 4096 in
      let data = payload size in
      let fd = ok (Kernel.Os.open_ os "/lvl" Kernel.Os.(creat rdwr)) in
      let _ = ok (Kernel.Os.pwrite os fd ~pos:0 data) in
      ok (Kernel.Os.fsync os fd);
      let free_full = (Kernel.Os.statfs os).Kernel.Vfs.f_bfree in
      (* cut back into the single-indirect range *)
      let sz1 = (Xv6fs.Layout.ndirect + 100) * 4096 + 123 in
      ok (Kernel.Os.ftruncate os fd sz1);
      ok (Kernel.Os.sync os);
      let free1 = (Kernel.Os.statfs os).Kernel.Vfs.f_bfree in
      Alcotest.(check bool) "double-indirect blocks freed" true
        (free1 > free_full + Xv6fs.Layout.nindirect / 4);
      Alcotest.(check bool) "kept content intact" true
        (Bytes.equal (Bytes.sub data 0 sz1)
           (ok (Kernel.Os.pread os fd ~pos:0 ~len:sz1)));
      (* cut back into the direct range *)
      let sz2 = (4 * 4096) + 77 in
      ok (Kernel.Os.ftruncate os fd sz2);
      ok (Kernel.Os.sync os);
      Alcotest.(check bool) "kept head intact" true
        (Bytes.equal (Bytes.sub data 0 sz2)
           (ok (Kernel.Os.pread os fd ~pos:0 ~len:sz2)));
      (* extend across the old boundaries: zeroes everywhere beyond sz2 *)
      let sz3 = (Xv6fs.Layout.ndirect + 5) * 4096 in
      ok (Kernel.Os.ftruncate os fd sz3);
      let tail = ok (Kernel.Os.pread os fd ~pos:sz2 ~len:(sz3 - sz2)) in
      Alcotest.(check bool) "extension reads zeroes" true
        (Bytes.for_all (fun c -> c = '\000') tail);
      ok (Kernel.Os.close os fd);
      (* and the image stays fsck-clean *)
      ok (Kernel.Os.sync os))

let test_statfs_sane () =
  with_xv6 (fun _m os _ _ ->
      let s = Kernel.Os.statfs os in
      Alcotest.(check bool) "blocks > 0" true (s.Kernel.Vfs.f_blocks > 0);
      Alcotest.(check bool) "free <= total" true
        (s.Kernel.Vfs.f_bfree <= s.Kernel.Vfs.f_blocks);
      Alcotest.(check bool) "inodes > 0" true (s.Kernel.Vfs.f_files > 0))

let suite =
  [
    tc "create/read/write" `Quick test_create_read_write;
    tc "overwrite truncates" `Quick test_overwrite;
    tc "append" `Quick test_append;
    tc "large file (double indirect)" `Quick test_large_file_double_indirect;
    tc "sparse holes" `Quick test_sparse_holes;
    tc "mkdir tree" `Quick test_mkdir_tree;
    tc "unlink" `Quick test_unlink;
    tc "unlink frees blocks" `Quick test_unlink_frees_blocks;
    tc "rmdir" `Quick test_rmdir;
    tc "rename simple" `Quick test_rename_simple;
    tc "rename replace" `Quick test_rename_replace;
    tc "rename across dirs" `Quick test_rename_across_dirs;
    tc "hard link" `Quick test_hard_link;
    tc "error paths" `Quick test_errors;
    tc "many files in a dir" `Quick test_many_files;
    tc "persistence across remount" `Quick test_persistence_across_remount;
    tc "fsync survives crash" `Quick test_fsync_durability_vs_crash;
    tc "concurrent writers" `Quick test_concurrent_writers;
    tc "partial truncate across levels" `Quick test_partial_truncate_across_levels;
    tc "statfs" `Quick test_statfs_sane;
  ]
