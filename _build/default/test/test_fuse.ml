(** Tests of the FUSE userspace stack: the same xv6fs code, mounted through
    the daemon + wire protocol + O_DIRECT user block I/O. *)

open Helpers

let tc = Alcotest.test_case

let with_fuse ?disk_blocks f =
  in_sim ?disk_blocks (fun machine ->
      ok (Bento.Bentofs.mkfs machine xv6_maker);
      let vfs, h = ok (Bento_user.mount ~background:false machine xv6_maker) in
      let os = Kernel.Os.create vfs in
      f machine os vfs;
      Bento_user.unmount vfs h)

let read_str os path = Bytes.to_string (ok (Kernel.Os.read_file os path))

let test_basic () =
  with_fuse (fun _m os _ ->
      ok (Kernel.Os.mkdir os "/u");
      ok (Kernel.Os.write_file os "/u/f" (bytes_of_string "via fuse"));
      Alcotest.(check string) "read" "via fuse" (read_str os "/u/f");
      let st = ok (Kernel.Os.stat os "/u/f") in
      Alcotest.(check int) "size" 8 st.Kernel.Vfs.st_size;
      ok (Kernel.Os.unlink os "/u/f");
      ok (Kernel.Os.rmdir os "/u"))

let test_fuse_data_survives_into_kernel_mount () =
  in_sim (fun machine ->
      ok (Bento.Bentofs.mkfs machine xv6_maker);
      (* write via FUSE *)
      let vfs, h = ok (Bento_user.mount ~background:false machine xv6_maker) in
      let os = Kernel.Os.create vfs in
      ok (Kernel.Os.write_file os "/x" (bytes_of_string "cross-runtime"));
      Bento_user.unmount vfs h;
      (* read via the in-kernel Bento mount: same code, other services *)
      let vfs2, h2 = ok (Bento.Bentofs.mount ~background:false machine xv6_maker) in
      let os2 = Kernel.Os.create vfs2 in
      Alcotest.(check string) "kernel mount reads fuse-written data"
        "cross-runtime"
        (Bytes.to_string (ok (Kernel.Os.read_file os2 "/x")));
      Bento.Bentofs.unmount vfs2 h2)

let test_fsync_via_fuse () =
  with_fuse (fun machine os _ ->
      let fd = ok (Kernel.Os.open_ os "/f" Kernel.Os.(creat wronly)) in
      let _ = ok (Kernel.Os.write os fd (payload 8192)) in
      let before = Kernel.Machine.now machine in
      ok (Kernel.Os.fsync os fd);
      let elapsed = Int64.sub (Kernel.Machine.now machine) before in
      ok (Kernel.Os.close os fd);
      (* the whole-disk-file fsync penalty must be visible: >= nominal
         512 GB * per-GB scan cost *)
      let c = Kernel.Machine.cost machine in
      let floor = Int64.mul 512L c.Kernel.Cost.odirect_fsync_per_gb in
      Alcotest.(check bool)
        (Printf.sprintf "fsync cost %Ld >= %Ld" elapsed floor)
        true
        (Int64.compare elapsed floor >= 0))

let test_reads_cached_in_kernel () =
  with_fuse (fun machine os _ ->
      ok (Kernel.Os.write_file os "/r" (payload (16 * 4096)));
      let fd = ok (Kernel.Os.open_ os "/r" Kernel.Os.rdonly) in
      let _ = ok (Kernel.Os.pread os fd ~pos:0 ~len:(16 * 4096)) in
      (* second read: kernel page cache, no daemon round-trip *)
      let stats = Kernel.Machine.stats machine in
      ignore stats;
      let t0 = Kernel.Machine.now machine in
      let _ = ok (Kernel.Os.pread os fd ~pos:0 ~len:4096) in
      let dt = Int64.sub (Kernel.Machine.now machine) t0 in
      ok (Kernel.Os.close os fd);
      (* a cached 4K read must be far below one FUSE round-trip + device *)
      Alcotest.(check bool)
        (Printf.sprintf "cached read fast (%Ldns)" dt)
        true
        (Int64.compare dt 20_000L < 0))

let test_many_files_via_fuse () =
  with_fuse (fun _m os _ ->
      for i = 0 to 49 do
        ok
          (Kernel.Os.write_file os
             (Printf.sprintf "/f%02d" i)
             (bytes_of_string (string_of_int i)))
      done;
      for i = 0 to 49 do
        Alcotest.(check string)
          (Printf.sprintf "f%02d" i)
          (string_of_int i)
          (read_str os (Printf.sprintf "/f%02d" i))
      done)

let test_concurrent_requests_correlate () =
  (* many kernel-side fibers in flight at once: the single-threaded daemon
     serialises them, and the unique-id correlation must route every reply
     to its requester *)
  with_fuse (fun machine os _ ->
      let done_ = Sim.Sync.Semaphore.create 0 in
      let failures = ref 0 in
      for w = 0 to 7 do
        Kernel.Machine.spawn machine (fun () ->
            for i = 0 to 9 do
              let path = Printf.sprintf "/w%d-%d" w i in
              let body = Printf.sprintf "payload-%d-%d" w i in
              (match Kernel.Os.write_file os path (bytes_of_string body) with
              | Ok () -> ()
              | Error _ -> incr failures);
              match Kernel.Os.read_file os path with
              | Ok got when Bytes.to_string got = body -> ()
              | _ -> incr failures
            done;
            Sim.Sync.Semaphore.release done_)
      done;
      for _ = 0 to 7 do
        Sim.Sync.Semaphore.acquire done_
      done;
      Alcotest.(check int) "all correlated correctly" 0 !failures)

let test_transport_closed_rejects () =
  in_sim (fun machine ->
      ok (Bento.Bentofs.mkfs machine xv6_maker);
      let vfs, h = ok (Bento_user.mount ~background:false machine xv6_maker) in
      let os = Kernel.Os.create vfs in
      ok (Kernel.Os.write_file os "/x" (bytes_of_string "x"));
      Bento_user.unmount vfs h;
      (* after unmount the connection is closed: further calls must fail
         cleanly, not hang *)
      match Kernel.Os.write_file os "/y" (bytes_of_string "y") with
      | Ok () -> Alcotest.fail "write after unmount succeeded"
      | Error _ -> ()
      | exception Fusesim.Transport.Connection_closed -> ())

let suite =
  [
    tc "basic ops over fuse" `Quick test_basic;
    tc "fuse data readable by kernel mount" `Quick
      test_fuse_data_survives_into_kernel_mount;
    tc "whole-file fsync penalty" `Quick test_fsync_via_fuse;
    tc "reads served by kernel page cache" `Quick test_reads_cached_in_kernel;
    tc "many files" `Quick test_many_files_via_fuse;
    tc "concurrent request correlation" `Quick test_concurrent_requests_correlate;
    tc "closed transport rejects" `Quick test_transport_closed_rejects;
  ]
