(** Benchmark targets: the four file-system stacks of the paper's
    evaluation, each brought up on a fresh simulated machine. *)

let ok = Kernel.Errno.ok_exn

let xv6_maker : (module Bento.Fs_api.FS_MAKER) = (module Xv6fs.Fs.Make)

type system = Bento_fs | C_kernel | Fuse | Ext4

let system_name = function
  | Bento_fs -> "Bento"
  | C_kernel -> "C-Kernel"
  | Fuse -> "FUSE"
  | Ext4 -> "Ext4"

let all_xv6 = [ Bento_fs; C_kernel; Fuse ]
let all_with_ext4 = [ Bento_fs; C_kernel; Fuse; Ext4 ]

(** Bring up [system] on a fresh machine, run [f os], tear down, drain the
    simulation, and return [f]'s result. *)
let run ?(disk_blocks = 2 * 1024 * 1024) ?(background = true) system f =
  let machine = Kernel.Machine.create ~disk_blocks ~block_size:4096 () in
  let result = ref None in
  Kernel.Machine.spawn ~name:"bench" machine (fun () ->
      match system with
      | Bento_fs ->
          ok (Bento.Bentofs.mkfs machine xv6_maker);
          let vfs, h = ok (Bento.Bentofs.mount ~background machine xv6_maker) in
          let os = Kernel.Os.create vfs in
          result := Some (f machine os);
          Bento.Bentofs.unmount vfs h
      | C_kernel ->
          ok (Vfs_xv6.mkfs machine);
          let vfs = ok (Vfs_xv6.mount ~background machine) in
          let os = Kernel.Os.create vfs in
          result := Some (f machine os);
          Vfs_xv6.unmount vfs
      | Fuse ->
          ok (Bento.Bentofs.mkfs machine xv6_maker);
          let vfs, h = ok (Bento_user.mount ~background machine xv6_maker) in
          let os = Kernel.Os.create vfs in
          result := Some (f machine os);
          Bento_user.unmount vfs h
      | Ext4 ->
          ok (Ext4sim.Ext4.mkfs machine);
          let vfs, h = ok (Ext4sim.Ext4.mount ~background machine) in
          let os = Kernel.Os.create vfs in
          result := Some (f machine os);
          Ext4sim.Ext4.unmount vfs h);
  Kernel.Machine.run machine;
  match !result with
  | Some r -> r
  | None -> failwith "bench target produced no result"
