bench/main.mli:
