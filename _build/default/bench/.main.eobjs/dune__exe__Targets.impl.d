bench/targets.ml: Bento Bento_user Ext4sim Kernel Vfs_xv6 Xv6fs
