bench/main.ml: Analyze Array Bechamel Benchmark Bento Bugstudy Bytes Char Format Fusesim Hashtbl Int64 Kernel List Measure Option Printf Sim Staged Sys Targets Test Time Toolkit Workloads Xv6fs
