(* Data provenance as a composable Bento layer (§3 of the paper motivates
   exactly this: track which outputs derive from which inputs, so that when
   a source goes bad you know what to regenerate).

   The [Bento.Stackfs.Provenance] layer wraps any Bento file system by
   functor application — direct calls, no VFS round trips — and its lineage
   table rides through online upgrades like any other transferable state.

     dune exec examples/provenance.exe *)

let ok = Kernel.Errno.ok_exn

module Prov = Bento.Stackfs.Provenance (Xv6fs.Fs.Make)

let () =
  let machine = Kernel.Machine.create ~disk_blocks:(256 * 1024) ~block_size:4096 () in
  Kernel.Machine.spawn ~name:"main" machine (fun () ->
      (* assemble the stack by hand so we can query the layer directly *)
      let bc = Kernel.Bcache.create machine in
      let services = Bento.Bentoks.kernel_services machine bc in
      let module K = (val services) in
      let module P = Prov (K) in
      ok (P.mkfs ());
      let fs = ok (P.mount ()) in

      (* a small "build pipeline": sensors.csv + calib.json -> model.bin *)
      let create name =
        let a = ok (P.create fs ~dir:1 name) in
        a.Bento.Fs_api.a_ino
      in
      let write ino data = ignore (ok (P.write fs ~ino ~off:0 (Bytes.of_string data))) in
      let sensors = create "sensors.csv" in
      write sensors "temp,42\ntemp,43\n";
      let calib = create "calib.json" in
      write calib "{\"offset\": 0.7}";

      (* the "training job" reads both inputs while writing the model *)
      ok (P.iopen fs ~ino:sensors);
      ok (P.iopen fs ~ino:calib);
      let model = create "model.bin" in
      write model "MODELv1";
      P.irelease fs ~ino:sensors;
      P.irelease fs ~ino:calib;

      (* a report derived from the model *)
      ok (P.iopen fs ~ino:model);
      let report = create "report.txt" in
      write report "all good";
      P.irelease fs ~ino:model;

      let name_of =
        let tbl = [ (sensors, "sensors.csv"); (calib, "calib.json");
                    (model, "model.bin"); (report, "report.txt") ] in
        fun ino -> try List.assoc ino tbl with Not_found -> Printf.sprintf "ino%d" ino
      in
      let show ino =
        let deps = P.derived_from fs ~ino in
        Printf.printf "%-12s <- [%s]\n" (name_of ino)
          (String.concat "; " (List.map name_of deps))
      in
      print_endline "lineage recorded by the provenance layer:";
      show model;
      show report;

      (* the paper's scenario: a sensor is recalibrated -> what must be
         regenerated? walk the lineage backwards *)
      let tainted = calib in
      let all_outputs = [ model; report ] in
      let rec depends_on ino bad =
        let deps = P.derived_from fs ~ino in
        List.mem bad deps || List.exists (fun d -> depends_on d bad) deps
      in
      Printf.printf "\ncalib.json was recalibrated; stale artifacts:\n";
      List.iter
        (fun o -> if depends_on o tainted then Printf.printf "  regenerate %s\n" (name_of o))
        all_outputs;

      (* lineage survives a version swap (§4.8 state transfer) *)
      let st = P.extract_state fs in
      let fs2 = ok (P.mount ()) in
      P.restore_state fs2 st;
      Printf.printf "\nafter an online upgrade, lineage still present: %b\n"
        (P.derived_from fs2 ~ino:model <> []);
      P.destroy fs2);
  Kernel.Machine.run machine
