examples/mailserver.ml: Bento Bytes Ext4sim Int64 Kernel List Printf Sim Xv6fs
