examples/quickstart.mli:
