examples/mailserver.mli:
