examples/live_upgrade.ml: Bento Bytes Int64 Kernel Printf Sim Xv6fs
