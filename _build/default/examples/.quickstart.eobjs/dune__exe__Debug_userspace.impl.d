examples/debug_userspace.ml: Bento Bento_user Bytes Int64 Kernel List Printf Xv6fs
