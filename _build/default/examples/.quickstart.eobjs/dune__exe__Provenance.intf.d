examples/provenance.mli:
