examples/quickstart.ml: Bento Bytes Device Kernel List Printf String Xv6fs
