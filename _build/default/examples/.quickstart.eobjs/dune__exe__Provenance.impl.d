examples/provenance.ml: Bento Bytes Kernel List Printf String Xv6fs
