examples/debug_userspace.mli:
