(* Quickstart: bring up a simulated machine, format it with the Bento xv6
   file system, and use the POSIX-ish syscall layer.

     dune exec examples/quickstart.exe *)

let ok = Kernel.Errno.ok_exn
let xv6 : (module Bento.Fs_api.FS_MAKER) = (module Xv6fs.Fs.Make)

let () =
  (* watch the kernel log (the simulated dmesg) while we work *)
  Kernel.Printk.set_level Kernel.Printk.Info;
  (* A machine: 8 cores + a 4 GB simulated NVMe SSD. *)
  let machine =
    Kernel.Machine.create ~disk_blocks:(1024 * 1024) ~block_size:4096 ()
  in
  (* Everything runs inside simulated threads ("fibers") in virtual time. *)
  Kernel.Machine.spawn ~name:"main" machine (fun () ->
      (* mkfs + mount through BentoFS. *)
      ok (Bento.Bentofs.mkfs machine xv6);
      (* background:false — we will simulate a crash without unmounting,
         so don't leave the writeback flusher fiber running forever *)
      let vfs, handle = ok (Bento.Bentofs.mount ~background:false machine xv6) in
      let os = Kernel.Os.create vfs in

      (* Ordinary file system calls. *)
      ok (Kernel.Os.mkdir os "/projects");
      ok (Kernel.Os.mkdir os "/projects/bento");
      ok
        (Kernel.Os.write_file os "/projects/bento/README"
           (Bytes.of_string "high velocity kernel file systems\n"));

      let fd = ok (Kernel.Os.open_ os "/projects/bento/log" Kernel.Os.(creat (appendf wronly))) in
      for day = 1 to 5 do
        let line = Printf.sprintf "day %d: wrote some safe kernel code\n" day in
        ignore (ok (Kernel.Os.write os fd (Bytes.of_string line)))
      done;
      ok (Kernel.Os.fsync os fd);
      ok (Kernel.Os.close os fd);

      let readme = ok (Kernel.Os.read_file os "/projects/bento/README") in
      Printf.printf "README: %s" (Bytes.to_string readme);

      let entries = ok (Kernel.Os.readdir os "/projects/bento") in
      Printf.printf "ls /projects/bento:";
      List.iter (fun d -> Printf.printf " %s" d.Kernel.Vfs.d_name) entries;
      print_newline ();

      let st = ok (Kernel.Os.stat os "/projects/bento/log") in
      Printf.printf "log: %d bytes, %d link(s)\n" st.Kernel.Vfs.st_size
        st.Kernel.Vfs.st_nlink;

      let s = Kernel.Os.statfs os in
      Printf.printf "statfs: %d/%d blocks free, %d/%d inodes free\n"
        s.Kernel.Vfs.f_bfree s.Kernel.Vfs.f_blocks s.Kernel.Vfs.f_ffree
        s.Kernel.Vfs.f_files;

      (* The write-ahead log makes fsynced data crash-durable: pull the
         plug and remount. *)
      Device.Ssd.crash (Kernel.Machine.disk machine);
      Printf.printf "-- power failure --\n";
      let vfs2, handle2 = ok (Bento.Bentofs.mount ~background:false machine xv6) in
      let os2 = Kernel.Os.create vfs2 in
      let log = ok (Kernel.Os.read_file os2 "/projects/bento/log") in
      Printf.printf "after crash, log has %d bytes (all 5 fsynced lines: %b)\n"
        (Bytes.length log)
        (Bytes.length log = 5 * String.length "day 1: wrote some safe kernel code\n");
      Bento.Bentofs.unmount vfs2 handle2;
      ignore (vfs, handle));
  Kernel.Machine.run machine;
  Printf.printf "done at virtual time %Ld ns\n" (Kernel.Machine.now machine)
