(* A varmail-style mail server on top of the public API — the kind of
   fsync-heavy application the paper's evaluation centres on. Runs the same
   mail workload on the Bento xv6 file system and on the ext4 comparator
   and reports both.

     dune exec examples/mailserver.exe *)

let ok = Kernel.Errno.ok_exn
let xv6 : (module Bento.Fs_api.FS_MAKER) = (module Xv6fs.Fs.Make)

(* A tiny mail store: one directory per mailbox, one file per message,
   fsync on every delivery (mail must not be lost). *)
module Mailstore = struct
  type t = { os : Kernel.Os.t; mutable delivered : int }

  let create os users =
    ok (Kernel.Os.mkdir os "/mail");
    List.iter (fun u -> ok (Kernel.Os.mkdir os ("/mail/" ^ u))) users;
    { os; delivered = 0 }

  let deliver t ~user ~id body =
    let path = Printf.sprintf "/mail/%s/msg%06d" user id in
    let fd = ok (Kernel.Os.open_ t.os path Kernel.Os.(creat wronly)) in
    ignore (ok (Kernel.Os.write t.os fd body));
    ok (Kernel.Os.fsync t.os fd) (* durability before acknowledging *);
    ok (Kernel.Os.close t.os fd);
    t.delivered <- t.delivered + 1

  let read_mail t ~user ~id =
    Kernel.Os.read_file t.os (Printf.sprintf "/mail/%s/msg%06d" user id)

  let expunge t ~user ~id =
    Kernel.Os.unlink t.os (Printf.sprintf "/mail/%s/msg%06d" user id)

  let mailbox_size t ~user =
    List.length (ok (Kernel.Os.readdir t.os ("/mail/" ^ user))) - 2
end

let users = [ "alice"; "bob"; "carol"; "dave" ]

let run_store name os machine =
  let store = Mailstore.create os users in
  let rng = Sim.Rng.create 99 in
  let t0 = Kernel.Machine.now machine in
  (* four delivery agents hammer the store concurrently *)
  let done_ = Sim.Sync.Semaphore.create 0 in
  List.iteri
    (fun ai user ->
      Kernel.Machine.spawn ~name:("agent-" ^ user) machine (fun () ->
          let rng = Sim.Rng.split rng in
          for id = 0 to 199 do
            let size = 512 + Sim.Rng.int rng 8192 in
            Mailstore.deliver store ~user ~id (Bytes.make size 'm');
            (* readers poll their mailboxes *)
            if id mod 10 = ai then
              ignore (Mailstore.read_mail store ~user ~id)
          done;
          (* expire the oldest half *)
          for id = 0 to 99 do
            ok (Mailstore.expunge store ~user ~id)
          done;
          Sim.Sync.Semaphore.release done_))
    users;
  List.iter (fun _ -> Sim.Sync.Semaphore.acquire done_) users;
  let dt = Int64.sub (Kernel.Machine.now machine) t0 in
  Printf.printf "%-8s delivered %d messages in %.3f virtual s (%.0f msg/s); " name
    store.Mailstore.delivered
    (Int64.to_float dt /. 1e9)
    (float_of_int store.Mailstore.delivered /. (Int64.to_float dt /. 1e9));
  Printf.printf "alice's mailbox now holds %d messages\n%!"
    (Mailstore.mailbox_size store ~user:"alice")

let () =
  (* same application, two file systems *)
  let machine = Kernel.Machine.create ~disk_blocks:(512 * 1024) ~block_size:4096 () in
  Kernel.Machine.spawn machine (fun () ->
      ok (Bento.Bentofs.mkfs machine xv6);
      let vfs, h = ok (Bento.Bentofs.mount machine xv6) in
      run_store "xv6fs" (Kernel.Os.create vfs) machine;
      Bento.Bentofs.unmount vfs h);
  Kernel.Machine.run machine;
  let machine = Kernel.Machine.create ~disk_blocks:(512 * 1024) ~block_size:4096 () in
  Kernel.Machine.spawn machine (fun () ->
      ok (Ext4sim.Ext4.mkfs machine);
      let vfs, h = ok (Ext4sim.Ext4.mount machine) in
      run_store "ext4" (Kernel.Os.create vfs) machine;
      Ext4sim.Ext4.unmount vfs h);
  Kernel.Machine.run machine
