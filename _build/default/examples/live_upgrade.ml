(* High development velocity in action (§4.8): replace the running file
   system module with a new version while applications keep their files
   open — no unmount, no service restart.

     dune exec examples/live_upgrade.exe *)

let ok = Kernel.Errno.ok_exn
let v1 : (module Bento.Fs_api.FS_MAKER) = (module Xv6fs.Fs.Make)
let v2 : (module Bento.Fs_api.FS_MAKER) = (module Xv6fs.Xv6fs_v2.Make)

let () =
  let machine = Kernel.Machine.create ~disk_blocks:(512 * 1024) ~block_size:4096 () in
  Kernel.Machine.spawn ~name:"main" machine (fun () ->
      ok (Bento.Bentofs.mkfs machine v1);
      let vfs, handle = ok (Bento.Bentofs.mount machine v1) in
      let os = Kernel.Os.create vfs in
      Printf.printf "mounted %s v%d\n%!"
        (Bento.Bentofs.current_name handle)
        (Bento.Bentofs.current_version handle);

      (* An "application": appends to its log file forever, checking that
         every append lands. It never closes its fd. *)
      let app_fd = ok (Kernel.Os.open_ os "/app.log" Kernel.Os.(creat (appendf wronly))) in
      let appended = ref 0 in
      let stop = ref false in
      let app_done = Sim.Sync.Semaphore.create 0 in
      Kernel.Machine.spawn ~name:"app" machine (fun () ->
          while not !stop do
            ignore (ok (Kernel.Os.write os app_fd (Bytes.of_string "tick\n")));
            incr appended;
            Sim.Engine.sleep (Sim.Time.us 500)
          done;
          Sim.Sync.Semaphore.release app_done);

      Sim.Engine.sleep (Sim.Time.ms 50);
      let before_upgrade = !appended in

      (* The developer ships v2 (adds a lookup cache + op counting). The
         upgrade quiesces in-flight operations, transfers allocator state
         and the kernel's open-inode references, and swaps the dispatch
         table. The app never notices. *)
      let report = Bento.Upgrade.upgrade handle v2 in
      Printf.printf
        "upgraded v%d -> v%d: paused ops for %.2f ms, transferred %d ints + \
         %d open inode(s)\n%!"
        report.Bento.Upgrade.from_version report.Bento.Upgrade.to_version
        (Int64.to_float report.Bento.Upgrade.pause_ns /. 1e6)
        report.Bento.Upgrade.transferred_ints
        report.Bento.Upgrade.transferred_open_inodes;

      Sim.Engine.sleep (Sim.Time.ms 50);
      stop := true;
      Sim.Sync.Semaphore.acquire app_done;
      ok (Kernel.Os.fsync os app_fd);
      ok (Kernel.Os.close os app_fd);

      let st = ok (Kernel.Os.stat os "/app.log") in
      Printf.printf
        "app appended %d lines before the upgrade and %d after; log file has \
         %d bytes (= %d lines x 5)\n"
        before_upgrade
        (!appended - before_upgrade)
        st.Kernel.Vfs.st_size (st.Kernel.Vfs.st_size / 5);
      Printf.printf "every line accounted for: %b\n%!"
        (st.Kernel.Vfs.st_size = !appended * 5);
      Bento.Bentofs.unmount vfs handle);
  Kernel.Machine.run machine
