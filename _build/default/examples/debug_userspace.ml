(* Userspace debugging (§4.9): the *same* xv6fs module — byte-for-byte the
   same functor — runs in the simulated kernel under BentoFS and at user
   level behind FUSE. Develop and debug at user level, deploy in the
   kernel, and the two runtimes even read each other's disk images.

     dune exec examples/debug_userspace.exe *)

let ok = Kernel.Errno.ok_exn
let xv6 : (module Bento.Fs_api.FS_MAKER) = (module Xv6fs.Fs.Make)

let exercise name os machine =
  let t0 = Kernel.Machine.now machine in
  ok (Kernel.Os.mkdir os ("/" ^ name));
  for i = 0 to 19 do
    ok
      (Kernel.Os.write_file os
         (Printf.sprintf "/%s/f%02d" name i)
         (Bytes.make (4096 * (1 + (i mod 4))) 'd'))
  done;
  let fd = ok (Kernel.Os.open_ os ("/" ^ name ^ "/f00") Kernel.Os.rdwr) in
  ignore (ok (Kernel.Os.pwrite os fd ~pos:100 (Bytes.of_string "patched")));
  ok (Kernel.Os.fsync os fd);
  ok (Kernel.Os.close os fd);
  let dt = Int64.sub (Kernel.Machine.now machine) t0 in
  Printf.printf "%-22s 20 files + patch + fsync in %8.3f virtual ms\n%!" name
    (Int64.to_float dt /. 1e6)

let () =
  let machine = Kernel.Machine.create ~disk_blocks:(512 * 1024) ~block_size:4096 () in
  Kernel.Machine.spawn ~name:"main" machine (fun () ->
      ok (Bento.Bentofs.mkfs machine xv6);

      (* 1. develop at user level: the fs runs in a FUSE daemon, block I/O
         goes through an O_DIRECT disk file. A bug here is a plain
         userspace crash you can catch in a debugger. *)
      let vfs, h = ok (Bento_user.mount machine xv6) in
      exercise "written-in-userspace" (Kernel.Os.create vfs) machine;
      Bento_user.unmount vfs h;

      (* 2. deploy the identical module in the kernel: same on-disk image,
         same code, kernel services instead of user services. *)
      let vfs, h = ok (Bento.Bentofs.mount machine xv6) in
      let os = Kernel.Os.create vfs in
      (* the files written by the userspace run are all here *)
      let entries = ok (Kernel.Os.readdir os "/written-in-userspace") in
      Printf.printf "kernel mount sees %d entries written by the FUSE run\n"
        (List.length entries - 2);
      let f0 = ok (Kernel.Os.read_file os "/written-in-userspace/f00") in
      Printf.printf "patch visible from the kernel runtime: %b\n"
        (Bytes.to_string (Bytes.sub f0 100 7) = "patched");
      exercise "written-in-kernel" os machine;
      Bento.Bentofs.unmount vfs h;
      Printf.printf
        "same file-system functor, two runtimes; the kernel one is the fast \
         one, the user one is the debuggable one.\n%!");
  Kernel.Machine.run machine
