lib/sim/resource.mli:
