lib/sim/rng.mli:
