lib/sim/sync.mli:
