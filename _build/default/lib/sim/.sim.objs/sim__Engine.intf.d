lib/sim/engine.mli:
