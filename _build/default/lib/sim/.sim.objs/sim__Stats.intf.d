lib/sim/stats.mli:
