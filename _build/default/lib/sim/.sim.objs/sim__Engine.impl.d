lib/sim/engine.ml: Effect Hashtbl Heap Int64 List Printexc Printf String
