lib/sim/heap.mli:
