lib/sim/resource.ml: Engine Int64 Queue
