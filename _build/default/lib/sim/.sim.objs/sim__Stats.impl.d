lib/sim/stats.ml: Hashtbl Int64 List String
