(** Array-based binary min-heap, specialised to [(int64 * int)] keys
    (event time, insertion sequence number). The sequence number makes event
    ordering total and hence the whole simulation deterministic. *)

type 'a entry = { time : int64; seq : int; payload : 'a }

type 'a t = { mutable arr : 'a entry array; mutable size : int }

let create () = { arr = [||]; size = 0 }

let length h = h.size
let is_empty h = h.size = 0

let lt a b =
  match Int64.compare a.time b.time with
  | 0 -> a.seq < b.seq
  | c -> c < 0

let grow h entry =
  let cap = Array.length h.arr in
  if h.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let narr = Array.make ncap entry in
    Array.blit h.arr 0 narr 0 h.size;
    h.arr <- narr
  end

let push h ~time ~seq payload =
  let entry = { time; seq; payload } in
  grow h entry;
  h.arr.(h.size) <- entry;
  h.size <- h.size + 1;
  (* sift up *)
  let i = ref (h.size - 1) in
  while
    !i > 0
    &&
    let p = (!i - 1) / 2 in
    lt h.arr.(!i) h.arr.(p)
  do
    let p = (!i - 1) / 2 in
    let tmp = h.arr.(p) in
    h.arr.(p) <- h.arr.(!i);
    h.arr.(!i) <- tmp;
    i := p
  done

let peek h = if h.size = 0 then None else Some h.arr.(0)

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.arr.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.arr.(0) <- h.arr.(h.size);
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && lt h.arr.(l) h.arr.(!smallest) then smallest := l;
        if r < h.size && lt h.arr.(r) h.arr.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = h.arr.(!smallest) in
          h.arr.(!smallest) <- h.arr.(!i);
          h.arr.(!i) <- tmp;
          i := !smallest
        end
      done
    end;
    Some top
  end
