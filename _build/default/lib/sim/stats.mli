(** Named counters and latency accumulators used across the kernel, device,
    and workloads for utilisation and per-operation statistics. *)

module Counter : sig
  type t

  val create : string -> t
  val incr : ?by:int -> t -> unit
  val add64 : t -> int64 -> unit
  val get : t -> int64
  val get_int : t -> int
  val reset : t -> unit
  val name : t -> string
end

module Latency : sig
  type t

  val create : string -> t
  val record : t -> int64 -> unit
  val count : t -> int
  val total : t -> int64
  val mean : t -> int64
  val min_ns : t -> int64
  val max_ns : t -> int64
  val name : t -> string
  val reset : t -> unit
end

type t
(** A registry of counters and latency trackers, addressed by name. *)

val create : unit -> t

val counter : t -> string -> Counter.t
(** Find-or-create. *)

val latency : t -> string -> Latency.t

val iter_counters : t -> (string -> Counter.t -> unit) -> unit
(** In name order (deterministic output). *)

val reset : t -> unit
