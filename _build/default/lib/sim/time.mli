(** Virtual time in nanoseconds since simulation start, with duration
    construction and bandwidth arithmetic helpers. *)

type t = int64

val zero : t
val compare : t -> t -> int

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val ns : int -> t
val us : int -> t
val ms : int -> t
val sec : int -> t

val scale : t -> float -> t
(** Multiply a duration by a factor, rounding to the nearest ns. *)

val of_float_ns : float -> t
val to_float_ns : t -> float

val of_bandwidth : bytes:int -> bytes_per_sec:float -> t
(** Time to move [bytes] at a given bandwidth. *)

val to_sec_float : t -> float

val pp : Format.formatter -> t -> unit
(** Human-friendly: "1.5ms", "3.2us", "2.1s". *)
