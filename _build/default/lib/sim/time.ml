(** Virtual time, in nanoseconds since simulation start.

    All of the simulated kernel, device, and workload code measures time in
    these units. Using [int64] gives us ~292 years of simulated range, far
    beyond any benchmark run. *)

type t = int64

let zero = 0L
let compare = Int64.compare
let ( + ) = Int64.add
let ( - ) = Int64.sub
let ( < ) a b = Stdlib.( < ) (Int64.compare a b) 0
let ( <= ) a b = Stdlib.( <= ) (Int64.compare a b) 0
let ( > ) a b = Stdlib.( > ) (Int64.compare a b) 0
let ( >= ) a b = Stdlib.( >= ) (Int64.compare a b) 0
let min a b = if a <= b then a else b
let max a b = if a >= b then a else b

let ns n = Int64.of_int n
let us n = Int64.mul (Int64.of_int n) 1_000L
let ms n = Int64.mul (Int64.of_int n) 1_000_000L
let sec n = Int64.mul (Int64.of_int n) 1_000_000_000L

(** [scale t f] multiplies a duration by a float factor, rounding to the
    nearest nanosecond. Used by cost models (e.g. bytes / bandwidth). *)
let scale t f = Int64.of_float (Float.round (Int64.to_float t *. f))

let of_float_ns f = Int64.of_float (Float.round f)
let to_float_ns t = Int64.to_float t

(** Duration to transfer [bytes] at [bytes_per_sec]. *)
let of_bandwidth ~bytes ~bytes_per_sec =
  if Stdlib.( <= ) bytes_per_sec 0. then invalid_arg "Time.of_bandwidth";
  of_float_ns (float_of_int bytes /. bytes_per_sec *. 1e9)

let to_sec_float t = Int64.to_float t /. 1e9

let pp ppf t =
  let f = Int64.to_float t in
  let ge = Stdlib.( >= ) in
  if ge (Float.abs f) 1e9 then Fmt.pf ppf "%.3fs" (f /. 1e9)
  else if ge (Float.abs f) 1e6 then Fmt.pf ppf "%.3fms" (f /. 1e6)
  else if ge (Float.abs f) 1e3 then Fmt.pf ppf "%.3fus" (f /. 1e3)
  else Fmt.pf ppf "%Ldns" t
