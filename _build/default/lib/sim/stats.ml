(** Named counters and simple latency accumulators, used across the kernel,
    device, and workloads to report utilisation and per-op statistics. *)

module Counter = struct
  type t = { name : string; mutable value : int64 }

  let create name = { name; value = 0L }
  let incr ?(by = 1) t = t.value <- Int64.add t.value (Int64.of_int by)
  let add64 t v = t.value <- Int64.add t.value v
  let get t = t.value
  let get_int t = Int64.to_int t.value
  let reset t = t.value <- 0L
  let name t = t.name
end

module Latency = struct
  type t = {
    name : string;
    mutable count : int;
    mutable total : int64;
    mutable min : int64;
    mutable max : int64;
  }

  let create name = { name; count = 0; total = 0L; min = Int64.max_int; max = 0L }

  let record t dur =
    t.count <- t.count + 1;
    t.total <- Int64.add t.total dur;
    if Int64.compare dur t.min < 0 then t.min <- dur;
    if Int64.compare dur t.max > 0 then t.max <- dur

  let count t = t.count
  let total t = t.total
  let mean t = if t.count = 0 then 0L else Int64.div t.total (Int64.of_int t.count)
  let min_ns t = if t.count = 0 then 0L else t.min
  let max_ns t = t.max
  let name t = t.name
  let reset t =
    t.count <- 0;
    t.total <- 0L;
    t.min <- Int64.max_int;
    t.max <- 0L
end

(** A registry so components can expose their counters by name. *)
type t = {
  counters : (string, Counter.t) Hashtbl.t;
  latencies : (string, Latency.t) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 64; latencies = Hashtbl.create 16 }

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
      let c = Counter.create name in
      Hashtbl.add t.counters name c;
      c

let latency t name =
  match Hashtbl.find_opt t.latencies name with
  | Some l -> l
  | None ->
      let l = Latency.create name in
      Hashtbl.add t.latencies name l;
      l

let iter_counters t f =
  let items =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.counters []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter (fun (k, v) -> f k v) items

let reset t =
  Hashtbl.iter (fun _ c -> Counter.reset c) t.counters;
  Hashtbl.iter (fun _ l -> Latency.reset l) t.latencies
