(** The "C-kernel" baseline (§6.2): the xv6 file system written directly
    against the kernel VFS, sharing the on-disk format with the Bento
    version ([Xv6fs.Layout]) but independently implemented with the
    characteristics the paper ascribes to its hand-written C baseline —
    raw kernel objects (no capability layer), `writepage` writeback
    ([wb_batch = 1]), and per-block synchronous log I/O. *)

val mkfs : Kernel.Machine.t -> (unit, Kernel.Errno.t) result
(** Format the device. Images are mountable by either xv6 implementation
    (cross-compatibility is covered by tests). *)

val mount :
  ?dirty_limit:int ->
  ?background:bool ->
  Kernel.Machine.t ->
  (Kernel.Vfs.t, Kernel.Errno.t) result
(** Recover the log and register the VFS ops. *)

val unmount : Kernel.Vfs.t -> unit
