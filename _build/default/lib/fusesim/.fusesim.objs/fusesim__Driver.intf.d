lib/fusesim/driver.mli: Kernel Transport
