lib/fusesim/ubcache.mli: Bytes Sim Ufile
