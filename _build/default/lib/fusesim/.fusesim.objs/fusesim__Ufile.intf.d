lib/fusesim/ufile.mli: Bytes Kernel Sim
