lib/fusesim/transport.ml: Bytes Hashtbl Int64 Kernel Proto Sim
