lib/fusesim/transport.mli: Bytes Kernel Proto Sim
