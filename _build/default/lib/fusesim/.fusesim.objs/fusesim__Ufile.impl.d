lib/fusesim/ufile.ml: Bytes Device Int64 Kernel Sim
