lib/fusesim/driver.ml: Array Bytes Device Kernel List Proto Transport
