lib/fusesim/proto.ml: Buffer Bytes Char Int32 Int64 Kernel List Printf String Util
