lib/fusesim/ubcache.ml: Bytes Hashtbl Sim Ufile
