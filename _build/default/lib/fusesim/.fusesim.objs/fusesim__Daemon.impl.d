lib/fusesim/daemon.ml: Bytes Kernel Proto Transport
