lib/fusesim/proto.mli: Bytes Kernel
