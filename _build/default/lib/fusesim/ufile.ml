(** The userspace daemon's view of the disk: a huge file opened with
    O_DIRECT (§6.2). Every block operation pays a syscall crossing, the
    VFS/block-layer traversal the paper measures at 200–400 ns, and the
    device command itself (O_DIRECT bypasses the kernel page cache).

    Durability from userspace is the real penalty: the file interface
    cannot sync a byte range, so syncing one block means fsync()ing the
    whole disk file — the kernel walks the file's mapping (cost scales with
    the nominal file size) and issues a device flush. This is the paper's
    explanation for FUSE's collapse on write/create/delete workloads
    (§6.4). *)

type t = {
  machine : Kernel.Machine.t;
  disk : Device.Ssd.t;
  nominal_gb : int;  (** size of the disk file the paper used: 512 GB *)
  stats : Sim.Stats.t;
}

let create ?(nominal_gb = 512) machine =
  {
    machine;
    disk = Kernel.Machine.disk machine;
    nominal_gb;
    stats = Sim.Stats.create ();
  }

let block_size t = Device.Ssd.block_size t.disk
let nblocks t = Device.Ssd.nblocks t.disk
let stats t = t.stats
let incr t name = Sim.Stats.Counter.incr (Sim.Stats.counter t.stats name)

let charge_block_io t =
  let c = Kernel.Machine.cost t.machine in
  Kernel.Machine.cpu_work t.machine
    (Int64.add c.Kernel.Cost.syscall c.Kernel.Cost.odirect_op)

(** pread(2) of one aligned block with O_DIRECT. *)
let pread_block t blk : Bytes.t =
  incr t "preads";
  charge_block_io t;
  Device.Ssd.read t.disk blk

(** pwrite(2) of one aligned block with O_DIRECT. *)
let pwrite_block t blk data =
  incr t "pwrites";
  charge_block_io t;
  Device.Ssd.write t.disk blk data

(** fsync(2) on the whole disk file: mapping walk over the nominal file
    size, then the device flush. *)
let fsync_disk t =
  incr t "fsyncs";
  let c = Kernel.Machine.cost t.machine in
  Kernel.Machine.cpu_work t.machine c.Kernel.Cost.syscall;
  (* The kernel walks the whole file's mapping: no way to sync a range. *)
  Kernel.Machine.cpu_work t.machine
    (Int64.mul
       (Int64.of_int t.nominal_gb)
       c.Kernel.Cost.odirect_fsync_per_gb);
  Device.Ssd.flush t.disk
