(** The userspace daemon's view of the disk: a huge file opened O_DIRECT.
    Per-block operations pay a syscall crossing plus the 200–400 ns
    VFS/block-layer traversal the paper measures; durability costs an
    fsync(2) of the *whole* disk file — the paper's explanation for FUSE's
    collapse on write and metadata workloads. *)

type t

val create : ?nominal_gb:int -> Kernel.Machine.t -> t
(** [nominal_gb] is the size of the disk file whose mapping the kernel
    walks on fsync (the paper's testbed used 512 GB). *)

val block_size : t -> int
val nblocks : t -> int
val stats : t -> Sim.Stats.t

val pread_block : t -> int -> Bytes.t
val pwrite_block : t -> int -> Bytes.t -> unit

val fsync_disk : t -> unit
(** Whole-file fsync: the mapping walk plus the device flush. *)
