(** The FUSE kernel driver: implements the kernel VFS ops by forwarding
    every operation over the transport to the userspace daemon. Runs in
    writeback-cache mode (like the paper's Rust FUSE baseline): file I/O
    goes through the kernel page cache, and dirty pages ship to the daemon
    in WRITE requests of up to [max_write]. *)

type t

val max_write_pages : int
(** 32 pages = the libfuse 128 KB max_write default. *)

val create : Kernel.Machine.t -> Transport.t -> t

val vfs_ops : t -> max_file_size:int -> Kernel.Vfs.fs_ops

val shutdown : t -> unit
(** Send DESTROY, then close the connection. *)
