(** Tables 2 and 3: the qualitative comparison of Linux file-system
    extensibility mechanisms and the challenge→solution map, rendered from
    structured data so the benchmark harness can print them alongside the
    measured tables. *)

type verdict = Yes | No | Tbd

let verdict_to_string = function Yes -> "yes" | No -> "no" | Tbd -> "tbd"

type mechanism = {
  m_name : string;
  safety : verdict;
  performance : verdict;
  generality : verdict;
  online_upgrade : verdict;
}

(** Table 2. The paper lists Bento's online upgrade as "tbd"; this
    reproduction implements it (see [Bento.Upgrade] and the upgrade
    benchmarks), so we keep the paper's verdict and note the extension. *)
let table2 =
  [
    { m_name = "VFS"; safety = No; performance = Yes; generality = Yes; online_upgrade = No };
    { m_name = "FUSE"; safety = Yes; performance = No; generality = Yes; online_upgrade = No };
    { m_name = "eBPF"; safety = Yes; performance = Yes; generality = No; online_upgrade = No };
    { m_name = "Bento"; safety = Yes; performance = Yes; generality = Yes; online_upgrade = Tbd };
  ]

type challenge_row = {
  challenge : string;
  solution : string;
  problem_sections : string;
  solution_section : string;
}

(** Table 3. *)
let table3 =
  [
    {
      challenge = "Unsafe Shared Memory Management";
      solution = "Restricted Memory Sharing";
      problem_sections = "3.1.1, 3.2.1";
      solution_section = "4.3";
    };
    {
      challenge = "Unsafe Kernel Interfaces";
      solution = "Safe Abstractions Around Kernel Services";
      problem_sections = "3.1.2";
      solution_section = "4.5";
    };
    {
      challenge = "Transferring Objects During Upgrade";
      solution = "Online Upgrade Component";
      problem_sections = "3.2.2";
      solution_section = "4.8";
    };
  ]

let pp_table2 ppf () =
  Fmt.pf ppf "%-8s %-8s %-12s %-11s %s@." "" "Safety" "Performance"
    "Generality" "Online Upgrade";
  List.iter
    (fun m ->
      Fmt.pf ppf "%-8s %-8s %-12s %-11s %s@." m.m_name
        (verdict_to_string m.safety)
        (verdict_to_string m.performance)
        (verdict_to_string m.generality)
        (verdict_to_string m.online_upgrade))
    table2;
  Fmt.pf ppf
    "(this reproduction implements Bento online upgrade: see bench 'upgrade')@."

let pp_table3 ppf () =
  Fmt.pf ppf "%-36s %-42s %-12s %s@." "Challenge" "Solution" "Problem"
    "Solution (sec)";
  List.iter
    (fun r ->
      Fmt.pf ppf "%-36s %-42s %-12s %s@." r.challenge r.solution
        r.problem_sections r.solution_section)
    table3
