(** The §2.1 bug study: bug-fix commits (2014–2018) of three Linux kernel
    extensions used by Docker — AppArmor, Open vSwitch datapath, and
    OverlayFS — categorised by low-level bug class, with the aggregate
    queries that produce Table 1 and the prose claims ("68 % memory bugs",
    "93 % preventable by Rust", "26 % caused an oops", "34 % leak memory").

    The dataset below is reconstructed from the paper's published per-class
    counts; each class carries its kernel-visible effect and whether safe
    Rust's type system would have rejected the bug. *)

type category = Memory | Concurrency | Type_error

type effect_on_kernel =
  | Likely_oops
  | Oops
  | Undefined
  | Overutilization
  | Memory_leak
  | Deadlock_effect
  | Variable

type bug_class = {
  name : string;
  category : category;
  count : int;
  effect : effect_on_kernel;
  rust_prevents : bool;
      (** would safe Rust's type system reject this bug class? *)
}

(** Table 1, row by row. *)
let table1 : bug_class list =
  [
    { name = "Use Before Allocate"; category = Memory; count = 6; effect = Likely_oops; rust_prevents = true };
    { name = "Double Free"; category = Memory; count = 4; effect = Undefined; rust_prevents = true };
    { name = "NULL Dereference"; category = Memory; count = 5; effect = Oops; rust_prevents = true };
    { name = "Use After Free"; category = Memory; count = 3; effect = Likely_oops; rust_prevents = true };
    { name = "Over Allocation"; category = Memory; count = 1; effect = Overutilization; rust_prevents = true };
    { name = "Out of Bounds"; category = Memory; count = 4; effect = Likely_oops; rust_prevents = true };
    { name = "Dangling Pointer"; category = Memory; count = 1; effect = Likely_oops; rust_prevents = true };
    { name = "Missing Free"; category = Memory; count = 18; effect = Memory_leak; rust_prevents = true };
    { name = "Reference Count Leak"; category = Memory; count = 7; effect = Memory_leak; rust_prevents = true };
    { name = "Other Memory"; category = Memory; count = 1; effect = Variable; rust_prevents = true };
    { name = "Deadlock"; category = Concurrency; count = 5; effect = Deadlock_effect; rust_prevents = false };
    { name = "Race Condition"; category = Concurrency; count = 5; effect = Variable; rust_prevents = true };
    { name = "Other Concurrency"; category = Concurrency; count = 1; effect = Variable; rust_prevents = true };
    { name = "Unchecked Error Value"; category = Type_error; count = 5; effect = Variable; rust_prevents = true };
    { name = "Other Type Error"; category = Type_error; count = 8; effect = Variable; rust_prevents = true };
  ]

let effect_to_string = function
  | Likely_oops -> "Likely oops"
  | Oops -> "oops"
  | Undefined -> "Undefined"
  | Overutilization -> "Overutilization"
  | Memory_leak -> "Memory Leak"
  | Deadlock_effect -> "Deadlock"
  | Variable -> "Variable"

let category_to_string = function
  | Memory -> "memory"
  | Concurrency -> "concurrency"
  | Type_error -> "type"

(* ------------------------------------------------------------------ *)
(* Aggregates (the numbers quoted in §2.1).                             *)

let total_low_level = List.fold_left (fun a b -> a + b.count) 0 table1

let count_by f = List.fold_left (fun a b -> if f b then a + b.count else a) 0 table1

let memory_bugs = count_by (fun b -> b.category = Memory)

let leak_bugs =
  count_by (fun b -> b.name = "Missing Free" || b.name = "Reference Count Leak")

let rust_preventable = count_by (fun b -> b.rust_prevents)

(** Bugs whose effect is an oops (process kill or kernel panic). *)
let oops_bugs = count_by (fun b -> b.effect = Likely_oops || b.effect = Oops)

(** Bugs that leak memory (DoS exposure). *)
let memory_leak_effect = count_by (fun b -> b.effect = Memory_leak)

let pct n = float_of_int n /. float_of_int total_low_level *. 100.

(** The percentages the paper states, computed from the dataset. *)
type claims = {
  total : int;
  memory_pct : float;  (** paper: 68 % *)
  leak_share_of_memory_pct : float;  (** paper: 50 % of memory bugs *)
  rust_preventable_pct : float;  (** paper: 93 % *)
  oops_pct : float;  (** paper: 26 % *)
  leak_effect_pct : float;  (** paper: 34 % *)
}

let claims () =
  {
    total = total_low_level;
    memory_pct = pct memory_bugs;
    leak_share_of_memory_pct =
      float_of_int leak_bugs /. float_of_int memory_bugs *. 100.;
    rust_preventable_pct = pct rust_preventable;
    oops_pct = pct oops_bugs;
    leak_effect_pct = pct memory_leak_effect;
  }

let pp_table1 ppf () =
  Fmt.pf ppf "%-24s %6s  %s@." "Bug" "Number" "Effect on Kernel";
  List.iter
    (fun b ->
      Fmt.pf ppf "%-24s %6d  %s@." b.name b.count (effect_to_string b.effect))
    table1;
  let c = claims () in
  Fmt.pf ppf "%-24s %6d@." "Total low-level" c.total;
  Fmt.pf ppf
    "memory: %.0f%% | leaks among memory: %.0f%% | Rust-preventable: %.0f%% | \
     oops: %.0f%% | leak effect: %.0f%%@."
    c.memory_pct c.leak_share_of_memory_pct c.rust_preventable_pct c.oops_pct
    c.leak_effect_pct
