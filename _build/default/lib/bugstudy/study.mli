(** The §2.1 bug study: bug-fix commits (2014–2018) of AppArmor, Open
    vSwitch datapath, and OverlayFS, categorised by low-level bug class —
    the dataset behind Table 1 and the paper's prose claims. *)

type category = Memory | Concurrency | Type_error

type effect_on_kernel =
  | Likely_oops
  | Oops
  | Undefined
  | Overutilization
  | Memory_leak
  | Deadlock_effect
  | Variable

type bug_class = {
  name : string;
  category : category;
  count : int;
  effect : effect_on_kernel;
  rust_prevents : bool;
}

val table1 : bug_class list
(** Table 1, row by row. *)

val effect_to_string : effect_on_kernel -> string
val category_to_string : category -> string

val total_low_level : int

(** The percentages §2.1 states, computed from the dataset: 68 % memory,
    50 % of memory bugs are leaks, 93 % Rust-preventable, 26 % oops,
    34 % leak effect. *)
type claims = {
  total : int;
  memory_pct : float;
  leak_share_of_memory_pct : float;
  rust_preventable_pct : float;
  oops_pct : float;
  leak_effect_pct : float;
}

val claims : unit -> claims
val pp_table1 : Format.formatter -> unit -> unit
