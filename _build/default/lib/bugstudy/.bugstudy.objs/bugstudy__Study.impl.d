lib/bugstudy/study.ml: Fmt List
