lib/bugstudy/study.mli: Format
