lib/bugstudy/comparison.ml: Fmt List
