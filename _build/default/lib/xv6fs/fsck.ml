(** Offline consistency checker for the xv6 on-disk format.

    Walks the durable image the way e2fsck walks ext4: superblock, inode
    table, block references, bitmap cross-check, directory graph, link
    counts. Used by the crash-injection tests to prove that whatever a
    power failure leaves behind, log recovery restores a consistent file
    system. *)

module L = Layout

type report = {
  errors : string list;
  warnings : string list;
  files : int;
  directories : int;
  used_blocks : int;
  pending_log : int;  (** committed-but-uninstalled blocks in the log *)
}

let ok r = r.errors = []

let pp_report ppf r =
  Fmt.pf ppf "fsck: %d files, %d dirs, %d used blocks, %d pending log blocks@."
    r.files r.directories r.used_blocks r.pending_log;
  List.iter (fun e -> Fmt.pf ppf "  ERROR: %s@." e) r.errors;
  List.iter (fun w -> Fmt.pf ppf "  warn: %s@." w) r.warnings

let bitmap_get data bit =
  Char.code (Bytes.get data (bit / 8)) land (1 lsl (bit mod 8)) <> 0

(** Check the image exposed by [read_block] (typically
    [Device.Ssd.Offline.stable_read dev], the post-crash durable state
    after log recovery, or [Device.Ssd.Offline.read] for the live view). *)
let check ~read_block ~nblocks () : report =
  let errors = ref [] and warnings = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let warn fmt = Printf.ksprintf (fun s -> warnings := s :: !warnings) fmt in
  match L.get_superblock (read_block 1) with
  | Error msg ->
      {
        errors = [ "superblock: " ^ msg ];
        warnings = [];
        files = 0;
        directories = 0;
        used_blocks = 0;
        pending_log = 0;
      }
  | Ok sb ->
      if sb.L.size > nblocks then
        err "superblock size %d exceeds device %d" sb.L.size nblocks;
      (* log state *)
      let log_header = L.get_log_header (read_block sb.L.logstart) in
      if log_header.L.n > 0 then
        warn "log holds %d uninstalled blocks (recovery pending)" log_header.L.n;
      (* gather inodes *)
      let ninodeblocks =
        (sb.L.ninodes + L.inodes_per_block - 1) / L.inodes_per_block
      in
      let inodes = Hashtbl.create 1024 in
      for b = 0 to ninodeblocks - 1 do
        let data = read_block (sb.L.inodestart + b) in
        for slot = 0 to L.inodes_per_block - 1 do
          let inum = (b * L.inodes_per_block) + slot in
          if inum >= 1 && inum < sb.L.ninodes then
            match L.get_dinode data ~slot with
            | Ok d -> if d.L.ftype <> L.F_free then Hashtbl.add inodes inum d
            | Error msg -> err "inode %d: %s" inum msg
        done
      done;
      (* walk block references *)
      let owner : (int, int) Hashtbl.t = Hashtbl.create 4096 in
      let claim inum blk =
        if blk < sb.L.datastart || blk >= sb.L.size then
          err "inode %d references out-of-range block %d" inum blk
        else
          match Hashtbl.find_opt owner blk with
          | Some other ->
              err "block %d referenced by both inode %d and inode %d" blk other
                inum
          | None -> Hashtbl.add owner blk inum
      in
      let read_indirect inum blk f =
        if blk <> 0 then begin
          claim inum blk;
          if blk >= sb.L.datastart && blk < sb.L.size then begin
            let data = read_block blk in
            for i = 0 to L.nindirect - 1 do
              let child = Util.Bytesio.get_u32 data (i * 4) in
              if child <> 0 then f child
            done
          end
        end
      in
      Hashtbl.iter
        (fun inum (d : L.dinode) ->
          let expected_blocks = (d.L.size + L.block_size - 1) / L.block_size in
          let counted = ref 0 in
          for i = 0 to L.ndirect - 1 do
            if d.L.addrs.(i) <> 0 then begin
              claim inum d.L.addrs.(i);
              incr counted
            end
          done;
          read_indirect inum d.L.addrs.(L.ndirect) (fun child ->
              claim inum child;
              incr counted);
          (* double indirect *)
          if d.L.addrs.(L.ndirect + 1) <> 0 then begin
            claim inum d.L.addrs.(L.ndirect + 1);
            let data = read_block d.L.addrs.(L.ndirect + 1) in
            for i = 0 to L.nindirect - 1 do
              let mid = Util.Bytesio.get_u32 data (i * 4) in
              read_indirect inum mid (fun child ->
                  claim inum child;
                  incr counted)
            done
          end;
          if !counted > expected_blocks then
            warn "inode %d: %d blocks mapped for size %d" inum !counted d.L.size)
        inodes;
      (* bitmap cross-check *)
      let used = ref 0 in
      for blk = sb.L.datastart to sb.L.size - 1 do
        let bm = read_block (L.bblock sb blk) in
        let marked = bitmap_get bm (L.bbit blk) in
        let referenced = Hashtbl.mem owner blk in
        if marked then incr used;
        if referenced && not marked then
          err "block %d in use by inode %d but free in bitmap" blk
            (Hashtbl.find owner blk);
        if marked && not referenced then
          err "block %d marked used but unreferenced" blk
      done;
      (* directory graph + link counts *)
      let nlink_seen = Hashtbl.create 1024 in
      let bump inum =
        Hashtbl.replace nlink_seen inum
          (1 + Option.value ~default:0 (Hashtbl.find_opt nlink_seen inum))
      in
      let dir_blocks (d : L.dinode) =
        (* enumerate data blocks of a (small) directory *)
        let out = ref [] in
        for i = 0 to L.ndirect - 1 do
          if d.L.addrs.(i) <> 0 then out := d.L.addrs.(i) :: !out
        done;
        if d.L.addrs.(L.ndirect) <> 0 then begin
          let data = read_block d.L.addrs.(L.ndirect) in
          for i = 0 to L.nindirect - 1 do
            let child = Util.Bytesio.get_u32 data (i * 4) in
            if child <> 0 then out := child :: !out
          done
        end;
        List.rev !out
      in
      let files = ref 0 and dirs = ref 0 in
      Hashtbl.iter
        (fun inum (d : L.dinode) ->
          match d.L.ftype with
          | L.F_dir -> (
              incr dirs;
              let seen_dot = ref false and seen_dotdot = ref false in
              List.iter
                (fun blk ->
                  let data = read_block blk in
                  for slot = 0 to L.dirents_per_block - 1 do
                    match L.get_dirent data ~slot with
                    | None -> ()
                    | Some (child, name) -> (
                        if name = "." then begin
                          seen_dot := true;
                          bump child;
                          if child <> inum then
                            err "dir %d: \".\" points to %d" inum child
                        end
                        else if name = ".." then begin
                          seen_dotdot := true;
                          bump child;
                          if not (Hashtbl.mem inodes child) then
                            err "dir %d: \"..\" points to free inode %d" inum
                              child
                        end
                        else
                          match Hashtbl.find_opt inodes child with
                          | None ->
                              err "dir %d: entry %S points to free inode %d"
                                inum name child
                          | Some _ -> bump child)
                  done)
                (dir_blocks d);
              if not !seen_dot then err "dir %d missing \".\"" inum;
              if not !seen_dotdot then err "dir %d missing \"..\"" inum)
          | L.F_file | L.F_symlink -> incr files
          | L.F_free -> ())
        inodes;
      (* link-count verification: every dirent (including "." and "..")
         bumped its target, so for every live inode nlink must equal the
         reference count. *)
      Hashtbl.iter
        (fun inum (d : L.dinode) ->
          let seen =
            Option.value ~default:0 (Hashtbl.find_opt nlink_seen inum)
          in
          if d.L.ftype <> L.F_free && seen <> d.L.nlink then
            err "inode %d: nlink %d but %d directory references" inum d.L.nlink
              seen)
        inodes;
      (* reachability from root *)
      (match Hashtbl.find_opt inodes L.root_ino with
      | None -> err "root inode missing"
      | Some root when root.L.ftype <> L.F_dir -> err "root is not a directory"
      | Some _ ->
          let visited = Hashtbl.create 1024 in
          let rec walk inum =
            if not (Hashtbl.mem visited inum) then begin
              Hashtbl.add visited inum ();
              match Hashtbl.find_opt inodes inum with
              | Some d when d.L.ftype = L.F_dir ->
                  List.iter
                    (fun blk ->
                      let data = read_block blk in
                      for slot = 0 to L.dirents_per_block - 1 do
                        match L.get_dirent data ~slot with
                        | Some (child, name) when name <> "." && name <> ".." ->
                            walk child
                        | _ -> ()
                      done)
                    (dir_blocks d)
              | _ -> ()
            end
          in
          walk L.root_ino;
          Hashtbl.iter
            (fun inum _ ->
              if not (Hashtbl.mem visited inum) then
                err "inode %d allocated but unreachable from root" inum)
            inodes);
      {
        errors = List.rev !errors;
        warnings = List.rev !warnings;
        files = !files;
        directories = !dirs;
        used_blocks = !used;
        pending_log = log_header.L.n;
      }

(** Convenience: check a device's durable state (what would survive a
    crash), typically after running mount-time recovery. *)
let check_device ?(stable = false) dev =
  let read_block blk =
    if stable then Device.Ssd.Offline.stable_read dev blk
    else Device.Ssd.Offline.read dev blk
  in
  check ~read_block ~nblocks:(Device.Ssd.nblocks dev) ()
