(** Offline consistency checker for the xv6 on-disk format (the e2fsck
    analogue): superblock, inode table, block references vs bitmap,
    directory graph with "." / ".." structure, link counts, reachability
    from the root, and pending-log detection.

    Used by the randomised crash-injection tests to prove that whatever a
    power failure leaves behind, log recovery restores a consistent file
    system. *)

type report = {
  errors : string list;  (** consistency violations *)
  warnings : string list;  (** oddities that are not corruption *)
  files : int;
  directories : int;
  used_blocks : int;
  pending_log : int;  (** committed-but-uninstalled blocks in the log *)
}

val ok : report -> bool
val pp_report : Format.formatter -> report -> unit

val check : read_block:(int -> Bytes.t) -> nblocks:int -> unit -> report
(** Check an arbitrary image exposed one block at a time. *)

val check_device : ?stable:bool -> Device.Ssd.t -> report
(** Check a device's current view, or with [~stable:true] only what would
    survive a crash right now. *)
