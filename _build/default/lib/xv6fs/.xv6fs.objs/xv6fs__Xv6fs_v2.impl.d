lib/xv6fs/xv6fs_v2.ml: Bento Fs Hashtbl
