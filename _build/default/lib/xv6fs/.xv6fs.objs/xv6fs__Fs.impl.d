lib/xv6fs/fs.ml: Array Bento Bytes Char Hashtbl Int64 Kernel Layout List Printf String Util
