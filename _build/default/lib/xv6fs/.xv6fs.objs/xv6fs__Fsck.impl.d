lib/xv6fs/fsck.ml: Array Bytes Char Device Fmt Hashtbl Layout List Option Printf Util
