lib/xv6fs/fsck.mli: Bytes Device Format
