lib/xv6fs/layout.ml: Array Bytes Int64 List Printf String Util
