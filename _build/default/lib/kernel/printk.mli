(** The kernel log (simulated dmesg). Silent by default so benchmarks run
    clean; enable with [set_level] to watch mounts, log recovery, upgrades.
    Lines carry the emitting machine's virtual timestamp. *)

type level = Quiet | Err | Info | Debug

val set_level : level -> unit

val err : Machine.t -> ('a, unit, string, unit) format4 -> 'a
val info : Machine.t -> ('a, unit, string, unit) format4 -> 'a
val debug : Machine.t -> ('a, unit, string, unit) format4 -> 'a
