(** Error codes crossing the VFS / file-system boundary (the simulated
    kernel's errno subset). The paper's bug study found "unchecked error
    values" to be a recurring bug class; typed results make them impossible
    to ignore here. *)

type t =
  | ENOENT
  | EEXIST
  | ENOTDIR
  | EISDIR
  | ENOTEMPTY
  | EINVAL
  | EIO
  | ENOSPC
  | EFBIG
  | ENAMETOOLONG
  | EBADF
  | EPERM
  | EROFS
  | ENFILE
  | EMLINK
  | ESTALE
  | EAGAIN
  | EXDEV
  | EBUSY
  | ELOOP

let to_string = function
  | ENOENT -> "ENOENT"
  | EEXIST -> "EEXIST"
  | ENOTDIR -> "ENOTDIR"
  | EISDIR -> "EISDIR"
  | ENOTEMPTY -> "ENOTEMPTY"
  | EINVAL -> "EINVAL"
  | EIO -> "EIO"
  | ENOSPC -> "ENOSPC"
  | EFBIG -> "EFBIG"
  | ENAMETOOLONG -> "ENAMETOOLONG"
  | EBADF -> "EBADF"
  | EPERM -> "EPERM"
  | EROFS -> "EROFS"
  | ENFILE -> "ENFILE"
  | EMLINK -> "EMLINK"
  | ESTALE -> "ESTALE"
  | EAGAIN -> "EAGAIN"
  | EXDEV -> "EXDEV"
  | EBUSY -> "EBUSY"
  | ELOOP -> "ELOOP"

let pp ppf e = Fmt.string ppf (to_string e)

(* Stable small integers for wire formats (FUSE protocol). *)
let all =
  [
    (ENOENT, 2);
    (EEXIST, 17);
    (ENOTDIR, 20);
    (EISDIR, 21);
    (ENOTEMPTY, 39);
    (EINVAL, 22);
    (EIO, 5);
    (ENOSPC, 28);
    (EFBIG, 27);
    (ENAMETOOLONG, 36);
    (EBADF, 9);
    (EPERM, 1);
    (EROFS, 30);
    (ENFILE, 23);
    (EMLINK, 31);
    (ESTALE, 116);
    (EAGAIN, 11);
    (EXDEV, 18);
    (EBUSY, 16);
    (ELOOP, 40);
  ]

let to_code e = List.assoc e all

let of_code c =
  match List.find_opt (fun (_, c') -> c = c') all with
  | Some (e, _) -> Some e
  | None -> None

exception Error of t

(** Unwrap a result, raising [Error]; for callers (tests, examples) that
    treat failure as fatal. *)
let ok_exn = function Ok v -> v | Error e -> raise (Error e)
