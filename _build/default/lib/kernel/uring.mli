(** io_uring-style asynchronous I/O (§8.1 of the paper, implemented).

    A batch of submissions costs one user/kernel crossing instead of one
    per operation, and kernel worker fibers (the io-wq analogue) execute
    operations concurrently. Completions carry the caller's [user_data]
    for correlation. *)

type op =
  | Read of { fd : int; pos : int; len : int }
  | Write of { fd : int; pos : int; data : Bytes.t }
  | Fsync of { fd : int }

type completion = {
  user_data : int;
  result : (Bytes.t, Errno.t) result;
      (** [Write]/[Fsync] complete with [Bytes.empty] on success *)
}

type t

val create : ?depth:int -> Os.t -> t
(** [depth] bounds worker concurrency (bounded io-wq). *)

val submit : t -> (int * op) list -> unit
(** Queue a batch (one crossing) and kick the workers. *)

val wait : t -> ?min_count:int -> ?max_count:int -> unit -> completion list
(** Reap completions, blocking until at least [min_count] are available or
    nothing is in flight. *)

val submit_and_wait : t -> (int * op) list -> completion list
(** liburing's submit_and_wait: the batch, fully completed. *)

val in_flight : t -> int
val close : t -> unit
