lib/kernel/bcache.mli: Bytes Machine Sim
