lib/kernel/cost.mli:
