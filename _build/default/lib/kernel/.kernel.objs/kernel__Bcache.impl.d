lib/kernel/bcache.ml: Array Bytes Cost Device Hashtbl List Machine Sim
