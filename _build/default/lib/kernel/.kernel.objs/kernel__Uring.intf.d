lib/kernel/uring.mli: Bytes Errno Os
