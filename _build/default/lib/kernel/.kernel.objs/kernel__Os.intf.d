lib/kernel/os.mli: Bytes Errno Vfs
