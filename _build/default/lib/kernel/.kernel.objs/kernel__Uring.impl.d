lib/kernel/uring.ml: Bytes Cost Errno List Machine Os Queue Sim Vfs
