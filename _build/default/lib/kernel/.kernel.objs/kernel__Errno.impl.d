lib/kernel/errno.ml: Fmt List
