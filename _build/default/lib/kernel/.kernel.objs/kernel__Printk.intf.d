lib/kernel/printk.mli: Machine
