lib/kernel/cost.ml: Sim
