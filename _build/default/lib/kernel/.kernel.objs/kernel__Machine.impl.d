lib/kernel/machine.ml: Cost Device Int64 Sim
