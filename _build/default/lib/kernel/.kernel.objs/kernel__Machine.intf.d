lib/kernel/machine.mli: Cost Device Sim
