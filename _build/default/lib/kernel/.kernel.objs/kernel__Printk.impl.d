lib/kernel/printk.ml: Int64 Machine Printf
