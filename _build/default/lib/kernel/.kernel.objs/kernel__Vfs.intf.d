lib/kernel/vfs.mli: Bytes Errno Hashtbl Machine Sim
