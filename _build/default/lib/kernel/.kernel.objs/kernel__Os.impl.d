lib/kernel/os.ml: Bytes Cost Errno Hashtbl Int64 List Machine Sim String Vfs
