lib/kernel/vfs.ml: Array Bytes Cost Device Errno Hashtbl List Machine Printk Sim
