(** The simulated machine: engine + CPU cores + attached device + global
    statistics. Every file-system stack in the evaluation runs on one. *)

type t

val create :
  ?cost:Cost.t ->
  ?config:Device.Ssd.config ->
  disk_blocks:int ->
  block_size:int ->
  unit ->
  t

val engine : t -> Sim.Engine.t
val disk : t -> Device.Ssd.t
val cost : t -> Cost.t
val stats : t -> Sim.Stats.t
val now : t -> int64

val cpu_work : t -> int64 -> unit
(** Burn CPU on one of the machine's cores, queueing when all are busy.
    Every simulated code path accounts for its processing time here. *)

val counter : t -> string -> Sim.Stats.Counter.t
val incr : ?by:int -> t -> string -> unit

val spawn : ?name:string -> t -> (unit -> unit) -> unit
(** Start a fiber on this machine. *)

val run : t -> unit
val run_until : t -> int64 -> unit
