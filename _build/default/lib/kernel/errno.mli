(** Error codes crossing the VFS / file-system boundary. Typed results make
    the "unchecked error value" bug class of the paper's Table 1
    unrepresentable. *)

type t =
  | ENOENT
  | EEXIST
  | ENOTDIR
  | EISDIR
  | ENOTEMPTY
  | EINVAL
  | EIO
  | ENOSPC
  | EFBIG
  | ENAMETOOLONG
  | EBADF
  | EPERM
  | EROFS
  | ENFILE
  | EMLINK
  | ESTALE
  | EAGAIN
  | EXDEV
  | EBUSY
  | ELOOP

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val all : (t * int) list
(** Every errno with its stable wire code (FUSE protocol). *)

val to_code : t -> int
val of_code : int -> t option

exception Error of t

val ok_exn : ('a, t) result -> 'a
(** Unwrap, raising {!Error}; for callers that treat failure as fatal. *)
