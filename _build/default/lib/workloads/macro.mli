(** Macrobenchmarks (§6.6): filebench's varmail and fileserver
    personalities and the untar-Linux benchmark. *)

type varmail_config = {
  vm_nfiles : int;
  vm_mean_size : int;
  vm_nthreads : int;
  vm_dirwidth : int;
}

val varmail_default : varmail_config
(** 1000 × ~16 KB mail files, single-threaded (see EXPERIMENTS.md for why
    the paper's numbers imply one thread). *)

val varmail :
  Kernel.Os.t ->
  duration:int64 ->
  ?config:varmail_config ->
  seed:int ->
  unit ->
  Bench_result.t
(** Mail-server loop: delete + create/append/fsync + read/append/fsync +
    whole-file read. [ops] counts completed transactions. *)

type fileserver_config = {
  fsv_nfiles : int;
  fsv_mean_size : int;
  fsv_append_size : int;
  fsv_nthreads : int;
  fsv_dirwidth : int;
}

val fileserver_default : fileserver_config
(** 2000 × ~128 KB files, 50 threads (filebench defaults, scaled). *)

val fileserver :
  Kernel.Os.t ->
  duration:int64 ->
  ?config:fileserver_config ->
  seed:int ->
  unit ->
  Bench_result.t
(** create+write / append / whole-file read / stat+delete mix. *)

(** {1 untar} *)

type manifest_entry = { me_path : string; me_size : int }

type manifest = {
  dirs : string list;  (** creation order, parents first *)
  files : manifest_entry list;
  total_bytes : int;
}

val linux_tree_manifest :
  ?nfiles:int -> ?ndirs:int -> seed:int -> unit -> manifest
(** Synthetic Linux-source-like tree: kernel-style top directories,
    subdirectories up to several levels, lognormal file sizes (median
    ~5 KB). Deterministic for a seed. *)

val untar : Kernel.Os.t -> manifest -> Bench_result.t
(** Unpack the manifest single-threaded (mkdir + create + 64 KB-chunk
    writes + close), then sync; [elapsed_ns] is the paper's "untar Linux"
    metric. *)
