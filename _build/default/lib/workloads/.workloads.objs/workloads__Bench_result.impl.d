lib/workloads/bench_result.ml: Fmt Int64
