lib/workloads/micro.mli: Bench_result Kernel
