lib/workloads/micro.ml: Array Bench_result Bytes Int64 Kernel Printf Sim
