lib/workloads/bench_result.mli: Format
