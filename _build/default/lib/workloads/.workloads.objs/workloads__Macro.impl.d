lib/workloads/macro.ml: Array Bench_result Bytes Int64 Kernel List Micro Printf Sim String
