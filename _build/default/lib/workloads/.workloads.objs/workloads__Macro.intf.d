lib/workloads/macro.mli: Bench_result Kernel
