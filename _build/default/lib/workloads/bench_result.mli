(** Result of a timed workload run, in virtual time. *)

type t = {
  label : string;
  ops : int;  (** completed operations (benchmark-defined unit) *)
  bytes : int;  (** payload bytes moved, for throughput benchmarks *)
  elapsed_ns : int64;
}

val elapsed_sec : t -> float
val ops_per_sec : t -> float
val mbps : t -> float
val pp : Format.formatter -> t -> unit
