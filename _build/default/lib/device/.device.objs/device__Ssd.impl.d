lib/device/ssd.ml: Array Bytes Hashtbl Int64 List Sim
