lib/device/ssd.mli: Bytes Sim
