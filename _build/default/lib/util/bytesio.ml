(** Little-endian fixed-width accessors over [Bytes.t], shared by the xv6
    and ext4 on-disk layouts and the FUSE wire protocol. All bounds errors
    raise [Invalid_argument] via the underlying [Bytes] primitives. *)

let get_u8 b off = Char.code (Bytes.get b off)
let set_u8 b off v = Bytes.set b off (Char.chr (v land 0xff))

let get_u16 b off = Bytes.get_uint16_le b off
let set_u16 b off v = Bytes.set_uint16_le b off v

let get_u32 b off = Int32.to_int (Bytes.get_int32_le b off) land 0xffffffff
let set_u32 b off v = Bytes.set_int32_le b off (Int32.of_int v)

let get_u64 b off = Bytes.get_int64_le b off
let set_u64 b off v = Bytes.set_int64_le b off v

let get_int64_as_int b off =
  let v = Bytes.get_int64_le b off in
  if Int64.compare v (Int64.of_int max_int) > 0 || Int64.compare v 0L < 0 then
    invalid_arg "Bytesio.get_int64_as_int: out of range"
  else Int64.to_int v

let set_int_as_u64 b off v =
  if v < 0 then invalid_arg "Bytesio.set_int_as_u64: negative";
  Bytes.set_int64_le b off (Int64.of_int v)

(** Fixed-width NUL-padded string field. *)
let set_string b ~off ~width s =
  let n = String.length s in
  if n > width then invalid_arg "Bytesio.set_string: too long";
  Bytes.blit_string s 0 b off n;
  Bytes.fill b (off + n) (width - n) '\000'

let get_string b ~off ~width =
  let rec len i = if i >= width || Bytes.get b (off + i) = '\000' then i else len (i + 1) in
  Bytes.sub_string b off (len 0)
