lib/util/bytesio.ml: Bytes Char Int32 Int64 String
