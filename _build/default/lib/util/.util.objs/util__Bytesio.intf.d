lib/util/bytesio.mli: Bytes
