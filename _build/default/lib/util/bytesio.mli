(** Little-endian fixed-width accessors over [Bytes.t], shared by the xv6
    and ext4 on-disk layouts and the FUSE wire protocol. Bounds errors
    raise [Invalid_argument]. *)

val get_u8 : Bytes.t -> int -> int
val set_u8 : Bytes.t -> int -> int -> unit
val get_u16 : Bytes.t -> int -> int
val set_u16 : Bytes.t -> int -> int -> unit
val get_u32 : Bytes.t -> int -> int
val set_u32 : Bytes.t -> int -> int -> unit
val get_u64 : Bytes.t -> int -> int64
val set_u64 : Bytes.t -> int -> int64 -> unit

val get_int64_as_int : Bytes.t -> int -> int
(** Raises [Invalid_argument] when the stored value does not fit a
    non-negative OCaml [int]. *)

val set_int_as_u64 : Bytes.t -> int -> int -> unit

val set_string : Bytes.t -> off:int -> width:int -> string -> unit
(** NUL-padded fixed-width field; raises if the string is wider. *)

val get_string : Bytes.t -> off:int -> width:int -> string
