(** Offline consistency checker for the simplified ext4 format: superblock,
    per-group bitmaps vs. extent references, extent overlap detection,
    directory graph, link counts, reachability. The ext4 counterpart of
    [Xv6fs.Fsck], used by the crash-injection tests. *)

module L = Layout4

type report = {
  errors : string list;
  warnings : string list;
  files : int;
  directories : int;
  symlinks : int;
  used_blocks : int;
}

let ok r = r.errors = []

let pp_report ppf r =
  Fmt.pf ppf "fsck.ext4: %d files, %d dirs, %d symlinks, %d used blocks@."
    r.files r.directories r.symlinks r.used_blocks;
  List.iter (fun e -> Fmt.pf ppf "  ERROR: %s@." e) r.errors;
  List.iter (fun w -> Fmt.pf ppf "  warn: %s@." w) r.warnings

let bit_get data bit =
  Char.code (Bytes.get data (bit / 8)) land (1 lsl (bit mod 8)) <> 0

let check ~read_block ~nblocks () : report =
  let errors = ref [] and warnings = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let warn fmt = Printf.ksprintf (fun s -> warnings := s :: !warnings) fmt in
  match L.get_superblock (read_block 1) with
  | Error msg ->
      {
        errors = [ "superblock: " ^ msg ];
        warnings = [];
        files = 0;
        directories = 0;
        symlinks = 0;
        used_blocks = 0;
      }
  | Ok sb ->
      if sb.L.total_blocks > nblocks then
        err "superblock claims %d blocks, device has %d" sb.L.total_blocks
          nblocks;
      (* load all live inodes with their full extent lists *)
      let inodes = Hashtbl.create 1024 in
      for ino = 1 to L.total_inodes sb do
        let blk = L.inode_block sb ino in
        let data = read_block blk in
        match L.get_dinode data ~slot:(L.inode_slot sb ino) with
        | Error msg -> err "inode %d: %s" ino msg
        | Ok d ->
            if d.L.kind <> L.K_free then begin
              (* expand inline + leaf extents *)
              let exts = ref [] in
              let remaining = ref d.L.nextents in
              Array.iter
                (fun e ->
                  if !remaining > 0 then begin
                    exts := e :: !exts;
                    decr remaining
                  end)
                d.L.inline;
              Array.iter
                (fun leaf ->
                  if leaf <> 0 && !remaining > 0 then begin
                    if leaf >= sb.L.total_blocks then
                      err "inode %d: leaf block %d out of range" ino leaf
                    else begin
                      let ldata = read_block leaf in
                      let n = min (L.get_leaf_count ldata) !remaining in
                      for i = 0 to n - 1 do
                        exts := L.get_leaf_extent ldata i :: !exts
                      done;
                      remaining := !remaining - n
                    end
                  end)
                d.L.leaves;
              if !remaining > 0 then
                err "inode %d: %d extents missing from leaves" ino !remaining;
              Hashtbl.add inodes ino (d, List.rev !exts)
            end
      done;
      (* extent references: range checks, overlap detection, bitmap *)
      let owner = Hashtbl.create 4096 in
      Hashtbl.iter
        (fun ino ((d : L.dinode), exts) ->
          ignore d;
          List.iter
            (fun (e : L.extent) ->
              for j = 0 to e.L.e_len - 1 do
                let blk = e.L.e_physical + j in
                if blk < sb.L.first_group_block || blk >= sb.L.total_blocks
                then err "inode %d: block %d out of range" ino blk
                else begin
                  (match Hashtbl.find_opt owner blk with
                  | Some other ->
                      err "block %d owned by inode %d and inode %d" blk other
                        ino
                  | None -> Hashtbl.add owner blk ino);
                  (* leaves are also owned blocks; handled below *)
                  let g = L.group_of_block sb blk in
                  let bm = read_block (L.group_block_bitmap sb g) in
                  if not (bit_get bm (blk - L.group_start sb g)) then
                    err "block %d used by inode %d but free in bitmap" blk ino
                end
              done)
            exts)
        inodes;
      (* leaf blocks must also be marked used *)
      Hashtbl.iter
        (fun ino ((d : L.dinode), _) ->
          Array.iter
            (fun leaf ->
              if leaf <> 0 then begin
                let g = L.group_of_block sb leaf in
                let bm = read_block (L.group_block_bitmap sb g) in
                if not (bit_get bm (leaf - L.group_start sb g)) then
                  err "leaf block %d of inode %d free in bitmap" leaf ino
              end)
            d.L.leaves)
        inodes;
      (* inode bitmap cross-check *)
      for ino = 1 to L.total_inodes sb do
        let g = L.group_of_ino sb ino in
        let bm = read_block (L.group_inode_bitmap sb g) in
        let marked = bit_get bm (L.index_in_group sb ino) in
        let live = Hashtbl.mem inodes ino in
        if live && not marked then err "inode %d live but free in bitmap" ino;
        if marked && not live then
          warn "inode %d marked used but free on disk" ino
      done;
      (* directory graph *)
      let lookup_block exts logical =
        let rec go = function
          | [] -> 0
          | (e : L.extent) :: rest ->
              if logical >= e.L.e_logical && logical < e.L.e_logical + e.L.e_len
              then e.L.e_physical + (logical - e.L.e_logical)
              else go rest
        in
        go exts
      in
      let nlink_seen = Hashtbl.create 256 in
      let bump i =
        Hashtbl.replace nlink_seen i
          (1 + Option.value ~default:0 (Hashtbl.find_opt nlink_seen i))
      in
      let files = ref 0 and dirs = ref 0 and links = ref 0 in
      Hashtbl.iter
        (fun ino ((d : L.dinode), exts) ->
          match d.L.kind with
          | L.K_dir ->
              incr dirs;
              let total = d.L.size / L.dirent_size in
              let nb = (d.L.size + L.block_size - 1) / L.block_size in
              for bi = 0 to nb - 1 do
                let phys = lookup_block exts bi in
                if phys <> 0 then begin
                  let data = read_block phys in
                  let hi =
                    min L.dirents_per_block (total - (bi * L.dirents_per_block))
                  in
                  for slot = 0 to hi - 1 do
                    match L.get_dirent data ~slot with
                    | None -> ()
                    | Some (child, name) ->
                        bump child;
                        if
                          name <> "." && name <> ".."
                          && not (Hashtbl.mem inodes child)
                        then
                          err "dir %d: entry %S points to free inode %d" ino
                            name child
                  done
                end
              done
          | L.K_file -> incr files
          | L.K_symlink -> incr links
          | L.K_free -> ())
        inodes;
      Hashtbl.iter
        (fun ino ((d : L.dinode), _) ->
          let seen = Option.value ~default:0 (Hashtbl.find_opt nlink_seen ino) in
          if seen <> d.L.nlink then
            err "inode %d: nlink %d but %d references" ino d.L.nlink seen)
        inodes;
      {
        errors = List.rev !errors;
        warnings = List.rev !warnings;
        files = !files;
        directories = !dirs;
        symlinks = !links;
        used_blocks = Hashtbl.length owner;
      }

let check_device ?(stable = false) dev =
  let read_block blk =
    if stable then Device.Ssd.Offline.stable_read dev blk
    else Device.Ssd.Offline.read dev blk
  in
  check ~read_block ~nblocks:(Device.Ssd.nblocks dev) ()
