(** The simplified ext4 comparator, mounted in data=journal mode like the
    paper's (§6): block groups with per-group bitmaps and rotors, extent-
    mapped files, fixed-record directories, and the JBD2-style journal
    ([Jbd2]) whose lazy checkpointing is the structural advantage over the
    xv6 log. A native kernel file system: registers VFS ops directly. *)

type handle

val mkfs : Kernel.Machine.t -> (unit, Kernel.Errno.t) result

val mount :
  ?dirty_limit:int ->
  ?background:bool ->
  ?commit_interval:int64 ->
  Kernel.Machine.t ->
  (Kernel.Vfs.t * handle, Kernel.Errno.t) result
(** [background:false] suppresses both the VFS flusher and the kjournald
    periodic-commit fiber (useful for bounded test runs).
    [commit_interval] defaults to the ext4-like 5 s. *)

val unmount : Kernel.Vfs.t -> handle -> unit
(** Commit, checkpoint everything, stop kjournald. *)

val journal_stats : handle -> int * int
(** (commits, checkpoints) — used by tests asserting group-commit
    batching. *)
