lib/ext4sim/ext4.mli: Kernel
