lib/ext4sim/fsck4.ml: Array Bytes Char Device Fmt Hashtbl Layout4 List Option Printf
