lib/ext4sim/jbd2.ml: Array Bytes Hashtbl Int64 Kernel Layout4 List Sim
