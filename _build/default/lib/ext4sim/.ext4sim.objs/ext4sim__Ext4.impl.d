lib/ext4sim/ext4.ml: Array Bytes Char Device Hashtbl Int64 Jbd2 Kernel Layout4 List Result Sim String
