lib/ext4sim/jbd2.mli: Bytes Hashtbl Kernel Sim
