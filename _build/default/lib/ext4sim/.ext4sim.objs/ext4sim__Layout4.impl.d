lib/ext4sim/layout4.ml: Array Bytes Int64 List Printf String Util
