(** The Bento userspace runtime: the §4.9 debugging story and the paper's
    FUSE baseline in one.

    [user_services] implements the same [Bentoks.KSERVICES] signature as
    the kernel runtime but over userspace facilities — a user-level buffer
    cache on an O_DIRECT disk file, and whole-disk-file fsync(2) as the
    durability barrier. Because a Bento file system is a functor over its
    services, the same fs code that runs in the kernel under BentoFS runs
    here behind the simulated FUSE transport, and both runtimes read the
    same disk image. *)

exception Use_after_release of string
exception Double_release of string

val user_services :
  Kernel.Machine.t -> Fusesim.Ubcache.t -> (module Bento.Bentoks.KSERVICES)

val handler_of : Bento.Fs_api.dispatch -> Fusesim.Daemon.handler
(** Expose a mounted fs's dispatch table as a FUSE daemon handler. *)

type mount_handle = {
  driver : Fusesim.Driver.t;
  transport : Fusesim.Transport.t;
  ubcache : Fusesim.Ubcache.t;
}

val mount :
  ?dirty_limit:int ->
  ?background:bool ->
  ?nominal_gb:int ->
  Kernel.Machine.t ->
  (module Bento.Fs_api.FS_MAKER) ->
  (Kernel.Vfs.t * mount_handle, Kernel.Errno.t) result
(** Assemble the whole userspace stack: instantiate the fs against user
    services, start the daemon fiber, mount the FUSE driver on the VFS.
    [nominal_gb] sizes the disk file whose mapping fsync walks (default
    512, the paper's). *)

val unmount : Kernel.Vfs.t -> mount_handle -> unit
(** Flush through the wire, send DESTROY, close the connection. *)
