(** Online upgrade of a running Bento file system (§4.8).

    Quiesces in-flight operations at the BentoFS dispatch lock, extracts
    the old version's transferable in-memory state, instantiates the new
    module against the *same* kernel services (so kernel-held structures —
    the warm buffer cache, open-inode references — survive), restores the
    state, and swaps the dispatch table. Applications keep their open
    files and observe only a small pause. *)

type report = {
  from_version : int;
  to_version : int;
  pause_ns : int64;  (** how long operations were quiesced *)
  transferred_ints : int;
  transferred_blobs : int;
  transferred_open_inodes : int;
}

exception Upgrade_failed of string
(** The replacement module failed to mount; the old version keeps
    running. *)

val upgrade : Bentofs.handle -> (module Fs_api.FS_MAKER) -> report
(** Swap the running file system for [maker]. Must be called from a
    fiber. *)
