(** Online upgrade of a running Bento file system (§4.8).

    Linux requires unmounting (and stopping every service using the file
    system) to replace a file-system module. Bento instead quiesces
    in-flight operations at the BentoFS dispatch lock, asks the old version
    for its transferable in-memory state, instantiates the new module
    against the *same* kernel services (so kernel-held structures — the
    buffer cache, open-inode references — survive), restores the state into
    the new instance, and swaps the dispatch table. Applications keep their
    open files; they only observe a small delay. *)

type report = {
  from_version : int;
  to_version : int;
  pause_ns : int64;  (** how long operations were quiesced *)
  transferred_ints : int;
  transferred_blobs : int;
  transferred_open_inodes : int;
}

exception Upgrade_failed of string

(** Swap the running file system to [maker]. Must be called from a fiber.
    The new instance's [restore_state] is handed everything the old
    instance chose to transfer. *)
let upgrade (h : Bentofs.handle) (maker : (module Fs_api.FS_MAKER)) : report =
  let machine = Bentofs.machine h in
  let t0 = Kernel.Machine.now machine in
  (* Quiesce: wait for in-flight operations to drain, block new ones. *)
  Sim.Sync.Rwlock.with_write h.Bentofs.dispatch_lock (fun () ->
      Kernel.Machine.cpu_work machine
        (Kernel.Machine.cost machine).Kernel.Cost.upgrade_quiesce;
      let old = h.Bentofs.current in
      let state = old.Fs_api.d_extract_state () in
      let module K = (val h.Bentofs.services : Bentoks.KSERVICES) in
      let module Maker = (val maker) in
      let module F = Maker (K) in
      match F.mount () with
      | Error e ->
          raise
            (Upgrade_failed
               (Printf.sprintf "new version failed to mount: %s"
                  (Kernel.Errno.to_string e)))
      | Ok fs ->
          F.restore_state fs state;
          h.Bentofs.current <- Fs_api.dispatch_of (module F) fs;
          h.Bentofs.upgrades <- h.Bentofs.upgrades + 1;
          Kernel.Printk.info machine
            "bento: upgraded %s v%d -> v%d (%d open inodes transferred)"
            F.name old.Fs_api.d_version F.version
            (List.length state.Upgrade_state.open_inodes);
          let t1 = Kernel.Machine.now machine in
          {
            from_version = old.Fs_api.d_version;
            to_version = F.version;
            pause_ns = Int64.sub t1 t0;
            transferred_ints = List.length state.Upgrade_state.ints;
            transferred_blobs = List.length state.Upgrade_state.blobs;
            transferred_open_inodes =
              List.length state.Upgrade_state.open_inodes;
          })
