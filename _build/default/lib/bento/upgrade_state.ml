(** State transferred from an old file-system version to its replacement
    during an online upgrade (§4.8).

    The mediating layer cannot know the internal types of either version, so
    the contract is a small self-describing bag: named integers, named
    blobs, and the table of inode numbers the kernel still holds references
    to (these must survive the swap or the kernel's handles would dangle —
    challenge 3/4 in the paper). *)

type t = {
  version : int;  (** version of the fs module that produced the state *)
  ints : (string * int) list;
  blobs : (string * Bytes.t) list;
  open_inodes : (int * int) list;  (** (ino, kernel refcount) pairs *)
}

let empty = { version = 0; ints = []; blobs = []; open_inodes = [] }

let int t name = List.assoc_opt name t.ints
let blob t name = List.assoc_opt name t.blobs

let with_int t name v = { t with ints = (name, v) :: t.ints }
let with_blob t name v = { t with blobs = (name, v) :: t.blobs }

let pp ppf t =
  Fmt.pf ppf "@[<v>upgrade-state v%d: %d ints, %d blobs, %d open inodes@]"
    t.version (List.length t.ints) (List.length t.blobs)
    (List.length t.open_inodes)
