(** State transferred from an old file-system version to its replacement
    during online upgrade (§4.8): a self-describing bag of named integers
    and blobs, plus the inode numbers the kernel still holds open (those
    references must survive the swap — challenges 3/4). *)

type t = {
  version : int;  (** version of the module that produced the state *)
  ints : (string * int) list;
  blobs : (string * Bytes.t) list;
  open_inodes : (int * int) list;  (** (ino, kernel refcount) *)
}

val empty : t
val int : t -> string -> int option
val blob : t -> string -> Bytes.t option
val with_int : t -> string -> int -> t
val with_blob : t -> string -> Bytes.t -> t
val pp : Format.formatter -> t -> unit
