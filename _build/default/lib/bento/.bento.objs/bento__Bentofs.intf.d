lib/bento/bentofs.mli: Bentoks Fs_api Kernel Sim
