lib/bento/registry.ml: Bentofs Fs_api Hashtbl List
