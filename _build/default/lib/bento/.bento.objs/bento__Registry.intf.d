lib/bento/registry.mli: Bentofs Fs_api Kernel
