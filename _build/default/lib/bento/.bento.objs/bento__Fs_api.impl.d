lib/bento/fs_api.ml: Bentoks Bytes Kernel Upgrade_state
