lib/bento/upgrade_state.mli: Bytes Format
