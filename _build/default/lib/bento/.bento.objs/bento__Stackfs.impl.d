lib/bento/stackfs.ml: Bentoks Buffer Bytes Char Fs_api Hashtbl List Option String Upgrade_state
