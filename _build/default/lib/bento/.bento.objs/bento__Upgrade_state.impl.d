lib/bento/upgrade_state.ml: Bytes Fmt List
