lib/bento/bentoks.ml: Bytes Device Kernel List Printf Sim
