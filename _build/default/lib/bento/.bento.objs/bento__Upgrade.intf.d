lib/bento/upgrade.mli: Bentofs Fs_api
