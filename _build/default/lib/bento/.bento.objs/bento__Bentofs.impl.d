lib/bento/bentofs.ml: Array Bentoks Bytes Fs_api Kernel List Sim
