lib/bento/upgrade.ml: Bentofs Bentoks Fs_api Int64 Kernel List Printf Sim Upgrade_state
