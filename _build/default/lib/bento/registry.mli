(** The module registry: Bento file-system types register on insmod and
    are looked up by name at mount time (Linux [register_filesystem]).
    Unregistering a type with live mounts fails with {!Busy}, like the
    kernel's module reference count. *)

type t

type entry = {
  fs_type : string;
  maker : (module Fs_api.FS_MAKER);
  mutable mounts : int;
}

exception Already_registered of string
exception Not_registered of string
exception Busy of string

val create : unit -> t
val register : t -> string -> (module Fs_api.FS_MAKER) -> unit
val unregister : t -> string -> unit
val registered : t -> string list
val find : t -> string -> entry

val mkfs : t -> string -> Kernel.Machine.t -> (unit, Kernel.Errno.t) result

val mount :
  ?dirty_limit:int ->
  ?background:bool ->
  t ->
  string ->
  Kernel.Machine.t ->
  (Kernel.Vfs.t * Bentofs.handle, Kernel.Errno.t) result

val unmount : t -> string -> Kernel.Vfs.t -> Bentofs.handle -> unit
