(** The module registry: Bento file systems register themselves when their
    module is inserted ([insmod]) and are looked up by name at mount time,
    mirroring Linux's [register_filesystem]. *)

type entry = {
  fs_type : string;
  maker : (module Fs_api.FS_MAKER);
  mutable mounts : int;
}

type t = { table : (string, entry) Hashtbl.t }

exception Already_registered of string
exception Not_registered of string
exception Busy of string

let create () = { table = Hashtbl.create 8 }

(** insmod: make the file-system type available. *)
let register t fs_type maker =
  if Hashtbl.mem t.table fs_type then raise (Already_registered fs_type);
  Hashtbl.add t.table fs_type { fs_type; maker; mounts = 0 }

(** rmmod: refuse while mounted, like the kernel's module refcount. *)
let unregister t fs_type =
  match Hashtbl.find_opt t.table fs_type with
  | None -> raise (Not_registered fs_type)
  | Some e when e.mounts > 0 -> raise (Busy fs_type)
  | Some _ -> Hashtbl.remove t.table fs_type

let registered t = Hashtbl.fold (fun k _ acc -> k :: acc) t.table [] |> List.sort compare

let find t fs_type =
  match Hashtbl.find_opt t.table fs_type with
  | None -> raise (Not_registered fs_type)
  | Some e -> e

let mkfs t fs_type machine = Bentofs.mkfs machine (find t fs_type).maker

let mount ?dirty_limit ?background t fs_type machine =
  let e = find t fs_type in
  match Bentofs.mount ?dirty_limit ?background machine e.maker with
  | Ok pair ->
      e.mounts <- e.mounts + 1;
      Ok pair
  | Error _ as err -> err

let unmount t fs_type vfs handle =
  let e = find t fs_type in
  Bentofs.unmount vfs handle;
  e.mounts <- max 0 (e.mounts - 1)
